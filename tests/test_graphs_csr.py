"""Unit tests for the CSR graph structure."""

import numpy as np
import pytest

from repro.graphs import CSRGraph, complete_graph, empty_graph, from_edges


def tiny():
    # Triangle 0-1-2 plus pendant 3 attached to 2.
    return from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])


class TestBasics:
    def test_counts(self):
        g = tiny()
        assert g.num_vertices == 4
        assert g.num_edges == 4

    def test_degrees(self):
        g = tiny()
        assert g.degree(2) == 3
        assert np.array_equal(g.degrees, [2, 2, 3, 1])

    def test_neighbors_sorted(self):
        g = tiny()
        assert np.array_equal(g.neighbors(2), [0, 1, 3])

    def test_has_edge(self):
        g = tiny()
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 3)
        assert not g.has_edge(1, 1)

    def test_edges_iterator_each_once(self):
        g = tiny()
        edges = list(g.edges())
        assert sorted(edges) == [(0, 1), (0, 2), (1, 2), (2, 3)]

    def test_edge_array_matches_iterator(self):
        g = tiny()
        us, vs = g.edge_array()
        assert sorted(zip(us.tolist(), vs.tolist())) == sorted(g.edges())

    def test_immutable_arrays(self):
        g = tiny()
        with pytest.raises(ValueError):
            g.indices[0] = 99


class TestValidation:
    def test_bad_indptr_start(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([1, 2]), np.array([0, 1], dtype=np.int32))

    def test_decreasing_indptr(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 3, 2, 4]), np.arange(4, dtype=np.int32))

    def test_odd_directed_count(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([0], dtype=np.int32))

    def test_out_of_range_neighbor(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1, 2]), np.array([5, 0], dtype=np.int32))

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2, 2]), np.array([0, 1], dtype=np.int32))

    def test_unsorted_adjacency_rejected(self):
        indptr = np.array([0, 2, 3, 4])
        indices = np.array([2, 1, 0, 0], dtype=np.int32)
        with pytest.raises(ValueError):
            CSRGraph(indptr, indices)


class TestSubgraph:
    def test_induced_triangle(self):
        g = tiny()
        sub, labels = g.subgraph(np.array([0, 1, 2], dtype=np.int32))
        assert sub.num_vertices == 3
        assert sub.num_edges == 3
        assert np.array_equal(labels, [0, 1, 2])

    def test_relabeling(self):
        g = tiny()
        sub, labels = g.subgraph(np.array([1, 2, 3], dtype=np.int32))
        # local 0=1, 1=2, 2=3: edges (1,2),(2,3) -> (0,1),(1,2)
        assert sorted(sub.edges()) == [(0, 1), (1, 2)]

    def test_empty_subgraph(self):
        g = tiny()
        sub, _ = g.subgraph(np.array([], dtype=np.int32))
        assert sub.num_vertices == 0 and sub.num_edges == 0

    def test_unsorted_subset_rejected(self):
        g = tiny()
        with pytest.raises(ValueError):
            g.subgraph(np.array([2, 0], dtype=np.int32))


class TestSpecialGraphs:
    def test_empty_graph(self):
        g = empty_graph(5)
        assert g.num_vertices == 5 and g.num_edges == 0

    def test_zero_vertices(self):
        g = empty_graph(0)
        assert g.num_vertices == 0

    def test_complete_graph(self):
        g = complete_graph(5)
        assert g.num_edges == 10
        assert all(g.has_edge(i, j) for i in range(5) for j in range(5) if i != j)

    def test_complete_tiny(self):
        assert complete_graph(1).num_edges == 0
        assert complete_graph(2).num_edges == 1

    def test_equality(self):
        assert tiny() == tiny()
        assert tiny() != complete_graph(4)


class TestInt32RangeValidation:
    """int64 ids that do not fit int32 must fail loudly, not wrap."""

    def test_overflowing_neighbor_index_raises_with_value(self):
        bad = 2**31  # wraps to -2147483648 under a silent int32 cast
        indptr = np.asarray([0, 1, 2], dtype=np.int64)
        indices = np.asarray([bad, 0], dtype=np.int64)
        with pytest.raises(ValueError, match=str(bad)):
            CSRGraph(indptr, indices)

    def test_overflow_rejected_even_without_validation(self):
        # The validate=False fast path every internal builder takes used
        # to be the silent-corruption route; the range check runs first.
        indptr = np.asarray([0, 1, 2], dtype=np.int64)
        indices = np.asarray([2**31, 0], dtype=np.int64)
        with pytest.raises(ValueError):
            CSRGraph(indptr, indices, validate=False)

    def test_int32_max_id_is_accepted_shapewise(self):
        # The largest representable id passes the range check (and then
        # fails structural validation only because indptr says n == 2,
        # proving the cast happened without wrapping).
        indptr = np.asarray([0, 1, 2], dtype=np.int64)
        indices = np.asarray([2**31 - 1, 0], dtype=np.int64)
        with pytest.raises(ValueError, match="out of range|neighbor"):
            CSRGraph(indptr, indices)

    def test_native_int32_input_unaffected(self):
        indptr = np.asarray([0, 1, 2], dtype=np.int64)
        indices = np.asarray([1, 0], dtype=np.int32)
        g = CSRGraph(indptr, indices)
        assert g.num_edges == 1
