"""Degenerate-input matrix: every engine, every pathological shape.

One shared parametrized matrix pins the contract that degenerate inputs
— the empty graph, edgeless (all-isolated) graphs, k > n, and empty
eligible-edge slices after aggressive kernelization — produce exact
zeros / empty listings and never raise, on every engine. These are the
shapes the dynamic mutation layer routinely drives graphs through
(deleting every edge, mutating tiny snapshots), so the sweep guards the
whole serving surface, not just the fuzz generators' typical range.
"""

import numpy as np
import pytest

from repro.core.api import count_cliques, has_clique, list_cliques
from repro.core.existence import clique_spectrum, find_clique
from repro.core.fast import fast_count_cliques
from repro.core.frontier import (
    count_frontier_slice,
    frontier_count_cliques,
    frontier_list_cliques,
)
from repro.core.parallel import count_cliques_parallel
from repro.core.prepared import PreparedGraph
from repro.core.variants import run_variant
from repro.dynamic import DynamicGraph, cliques_through_edges
from repro.graphs import complete_graph, from_edges
from repro.pram.tracker import Tracker


def edgeless(n):
    return from_edges(np.empty((0, 2), dtype=np.int64), num_vertices=n)


def triangle_plus_isolated():
    return from_edges(
        np.asarray([[0, 1], [1, 2], [0, 2]], dtype=np.int64), num_vertices=6
    )


GRAPHS = {
    "empty": edgeless(0),
    "single-vertex": edgeless(1),
    "all-isolated": edgeless(7),
    "triangle+isolated": triangle_plus_isolated(),
    "k4": complete_graph(4),
}

ENGINES = {
    "reference": lambda g, k: run_variant(g, k, "best-work", Tracker()).count,
    "frontier": lambda g, k: frontier_count_cliques(g, k),
    "frontier-warm": lambda g, k: frontier_count_cliques(
        g, k, prepared=PreparedGraph(g)
    ),
    "bitset": lambda g, k: fast_count_cliques(g, k),
    "process": lambda g, k: count_cliques_parallel(g, k, n_workers=2),
    "auto": lambda g, k: count_cliques(g, k).count,
    "kernelized": lambda g, k: count_cliques(
        g, k, engine="frontier", kernelize=True
    ).count,
}


def expected_count(g, k):
    """Brute force over the tiny fixtures (n <= 7)."""
    import itertools

    if k < 1:
        return 0
    return sum(
        1
        for comb in itertools.combinations(range(g.num_vertices), k)
        if all(g.has_edge(a, b) for a, b in itertools.combinations(comb, 2))
    )


@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("gname", sorted(GRAPHS))
class TestDegenerateMatrix:
    def test_exact_count_never_raises(self, gname, engine):
        g = GRAPHS[gname]
        for k in (1, 2, 3, 4, g.num_vertices + 1, g.num_vertices + 5):
            assert ENGINES[engine](g, k) == expected_count(g, k), (gname, k)


@pytest.mark.parametrize("gname", sorted(GRAPHS))
class TestDegenerateListingsAndExistence:
    def test_listings_empty_and_exact(self, gname):
        g = GRAPHS[gname]
        for k in (3, g.num_vertices + 2):
            expected = expected_count(g, k)
            assert len(list_cliques(g, k)) == expected
            assert len(frontier_list_cliques(g, k)) == expected

    def test_existence_and_spectrum(self, gname):
        g = GRAPHS[gname]
        k = g.num_vertices + 1  # k > n: no clique can exist
        assert find_clique(g, k) is None
        assert not has_clique(g, k)
        spectrum = clique_spectrum(g)
        for j, c in spectrum.items():
            assert c == expected_count(g, j), (gname, j)


class TestEmptyEligibleSlices:
    def test_empty_slice_counts_zero(self):
        g = triangle_plus_isolated()
        ctx = PreparedGraph(g)
        tables = ctx.frontier_tables()
        empty = np.empty(0, dtype=np.int64)
        for c in (0, 1, 2, 5):
            assert count_frontier_slice(tables, empty, c, prune=True) == 0
            assert count_frontier_slice(tables, empty, c, prune=False) == 0

    def test_edgeless_graph_has_empty_tables(self):
        ctx = PreparedGraph(edgeless(5))
        tables = ctx.frontier_tables()
        eligible = np.arange(0, dtype=np.int64)
        assert count_frontier_slice(tables, eligible, 2) == 0


class TestDegenerateDynamic:
    def test_delete_every_edge_then_reinsert(self):
        g = triangle_plus_isolated()
        dyn = DynamicGraph(g, verify=True)
        dyn.count(3)
        edges = list(g.edges())
        dyn.delete_edges(edges)
        assert dyn.num_edges == 0
        assert dyn.count(3) == 0
        dyn.insert_edges(edges)
        assert dyn.count(3) == 1

    def test_delta_on_edgeless_membership(self):
        # A delta sweep where communities are all empty must count zero.
        g = from_edges(np.asarray([[0, 1]], dtype=np.int64), num_vertices=4)
        res = cliques_through_edges(g, [(0, 1)], 4, collect=True)
        assert res.count == 0 and res.cliques == []

    def test_mutations_on_isolated_vertices_graph(self):
        dyn = DynamicGraph(edgeless(5), verify=True)
        dyn.count(3)
        dyn.insert_edges([(0, 1), (1, 2), (0, 2)])
        assert dyn.count(3) == 1
        dyn.delete_edges([(0, 1)])
        assert dyn.count(3) == 0
