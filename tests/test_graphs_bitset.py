"""Unit tests for the packed-bitset adjacency and the fast engine."""

import math

import numpy as np
import pytest

from repro.baselines import brute_force_count
from repro.core import fast_count_cliques
from repro.graphs import (
    BitMatrix,
    complete_graph,
    empty_graph,
    gnm_random_graph,
    orient_by_order,
    pack_indices,
    popcount,
    unpack_bits,
)


class TestPackUnpack:
    def test_round_trip(self):
        idx = np.array([0, 1, 63, 64, 65, 127, 200])
        words = pack_indices(idx, 256)
        assert unpack_bits(words, 256).tolist() == idx.tolist()

    def test_empty(self):
        words = pack_indices(np.array([], dtype=np.int64), 100)
        assert popcount(words) == 0
        assert unpack_bits(words, 100).size == 0

    def test_out_of_universe_rejected(self):
        with pytest.raises(ValueError):
            pack_indices(np.array([70]), 64)
        with pytest.raises(ValueError):
            pack_indices(np.array([-1]), 64)

    def test_popcount_matches_size(self):
        rng = np.random.default_rng(1)
        idx = np.unique(rng.integers(0, 500, size=200))
        assert popcount(pack_indices(idx, 500)) == idx.size

    def test_popcount_all_ones_word(self):
        assert popcount(np.array([~np.uint64(0)], dtype=np.uint64)) == 64


class TestBitMatrix:
    def test_from_graph_symmetric(self):
        g = gnm_random_graph(70, 300, seed=2)
        mat = BitMatrix.from_graph(g)
        for v in range(70):
            assert unpack_bits(mat.rows[v], 70).tolist() == g.neighbors(v).tolist()

    def test_from_dag_community(self):
        g = complete_graph(8)
        dag = orient_by_order(g, np.arange(8))
        members = np.array([1, 3, 5, 6])
        mat = BitMatrix.from_dag_community(dag, members)
        # renamed: 0=1, 1=3, 2=5, 3=6; upper-triangular complete
        assert mat.has_bit(0, 1) and mat.has_bit(2, 3)
        assert not mat.has_bit(1, 0)  # direction respected
        # in-rows are the transpose
        assert mat.rows_in[3, 0] != 0

    def test_full_mask_bit_count(self):
        mat = BitMatrix(70)
        assert popcount(mat.full_mask()) == 70

    def test_full_mask_zero_universe(self):
        mat = BitMatrix(0)
        assert mat.full_mask().size == 0

    def test_negative_universe_rejected(self):
        with pytest.raises(ValueError):
            BitMatrix(-1)

    def test_count_and(self):
        g = complete_graph(6)
        mat = BitMatrix.from_graph(g)
        assert mat.count_and(0, mat.full_mask()) == 5


class TestFrozenRows:
    def test_from_graph_rows_in_not_aliased(self):
        # The seed bug: rows_in = rows (one buffer, two names). A frozen
        # copy means the views can never drift apart.
        g = gnm_random_graph(40, 150, seed=4)
        mat = BitMatrix.from_graph(g)
        assert mat.rows_in is not mat.rows
        assert not np.shares_memory(mat.rows_in, mat.rows)
        np.testing.assert_array_equal(mat.rows_in, mat.rows)

    def test_constructed_matrices_are_frozen(self):
        g = gnm_random_graph(40, 150, seed=4)
        sym = BitMatrix.from_graph(g)
        dag = orient_by_order(g, np.arange(40))
        tri = BitMatrix.from_dag_community(dag, dag.out_neighbors(0).astype(np.int64))
        for mat in (sym, tri):
            assert not mat.rows.flags.writeable
            assert not mat.rows_in.flags.writeable
            with pytest.raises(ValueError):
                mat.rows[0, 0] |= np.uint64(1)
            with pytest.raises(ValueError):
                mat.rows_in[0, 0] |= np.uint64(1)

    def test_direct_constructor_stays_writable(self):
        # Hand-built matrices (tests, future kernels) fill rows in place
        # before freezing; the bare constructor must not pre-freeze.
        mat = BitMatrix(8)
        mat.rows[0] = pack_indices(np.array([1, 2]), 8)
        mat._fill_in_rows()
        mat.freeze()
        assert not mat.rows.flags.writeable


class TestFastEngine:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 6])
    def test_matches_oracle(self, k, small_random_graphs):
        for g in small_random_graphs:
            assert fast_count_cliques(g, k) == brute_force_count(g, k)

    def test_complete_graph(self):
        g = complete_graph(11)
        for k in (4, 8, 11):
            assert fast_count_cliques(g, k) == math.comb(11, k)

    def test_matches_reference_engine_on_dataset(self):
        from repro import count_cliques
        from repro.bench import load_dataset

        g = load_dataset("bio-sc-ht")
        for k in (6, 9):
            assert fast_count_cliques(g, k) == count_cliques(g, k).count

    def test_large_universe_multiword(self):
        # Community > 64 members exercises multi-word masks.
        g = complete_graph(80)
        assert fast_count_cliques(g, 4) == math.comb(80, 4)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            fast_count_cliques(empty_graph(3), 0)

    def test_empty(self):
        assert fast_count_cliques(empty_graph(5), 4) == 0

    def test_per_source_hoist_matches_reference_on_dense_sources(self):
        # Regression for the per-edge matrix rebuild: sources with many
        # eligible out-edges (planted cliques) now share one BitMatrix per
        # source — counts must stay identical to the reference engine,
        # including on a multi-word universe.
        from repro import count_cliques
        from repro.graphs.generators import plant_cliques

        g = gnm_random_graph(120, 600, seed=8)
        g, _ = plant_cliques(g, [10, 9], seed=8)
        for k in (4, 5, 6, 8):
            assert (
                fast_count_cliques(g, k)
                == count_cliques(g, k, engine="reference").count
            ), k
        # Multi-word universe (γ > 64), small k to keep the count tame.
        wide, _ = plant_cliques(gnm_random_graph(100, 300, seed=8), [68], seed=8)
        assert (
            fast_count_cliques(wide, 4)
            == count_cliques(wide, 4, engine="reference").count
        )

    def test_shared_prepared_context(self):
        from repro.core.prepared import PreparedGraph

        g = gnm_random_graph(50, 250, seed=6)
        ctx = PreparedGraph(g)
        cold = fast_count_cliques(g, 4)
        assert fast_count_cliques(g, 4, prepared=ctx) == cold
        assert fast_count_cliques(g, 4, prepared=ctx) == cold  # warm hit
