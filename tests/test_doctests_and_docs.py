"""Executable-documentation checks: doctests, README snippets, doc files."""

import doctest
import os
import re

import pytest

DOCS = os.path.join(os.path.dirname(__file__), "..", "docs")
ROOT = os.path.join(os.path.dirname(__file__), "..")


class TestDoctests:
    def test_core_api_doctest(self):
        import repro.core.api as mod

        results = doctest.testmod(mod, verbose=False)
        assert results.failed == 0

    def test_package_docstring_example_runs(self):
        # The snippet in repro/__init__.py (Quickstart::) must execute.
        from repro import count_cliques
        from repro.graphs import gnm_random_graph

        g = gnm_random_graph(1000, 5000, seed=0)
        result = count_cliques(g, k=4)
        assert result.count >= 0
        assert result.simulated_time(p=72) > 0


class TestReadmeSnippets:
    def test_quickstart_block_executes(self):
        readme = open(os.path.join(ROOT, "README.md")).read()
        blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
        assert blocks, "README must contain python examples"
        # Execute the first (quickstart) block in a fresh namespace.
        namespace: dict = {}
        exec(blocks[0], namespace)  # noqa: S102 - executing our own docs

    def test_variant_block_names_are_valid(self):
        from repro import VARIANTS

        readme = open(os.path.join(ROOT, "README.md")).read()
        for variant in re.findall(r'variant="([a-z-]+)"', readme):
            assert variant in VARIANTS, variant


class TestDocFiles:
    @pytest.mark.parametrize(
        "name", ["ALGORITHMS.md", "PRAM.md", "DATASETS.md"]
    )
    def test_doc_exists_and_nonempty(self, name):
        path = os.path.join(DOCS, name)
        assert os.path.exists(path)
        assert len(open(path).read()) > 500

    def test_design_lists_every_bench_target(self):
        design = open(os.path.join(ROOT, "DESIGN.md")).read()
        bench_dir = os.path.join(ROOT, "benchmarks")
        for fname in os.listdir(bench_dir):
            if fname.startswith("bench_") and fname.endswith(".py"):
                assert fname in design, f"{fname} missing from DESIGN.md"

    def test_experiments_covers_all_figures_and_tables(self):
        experiments = open(os.path.join(ROOT, "EXPERIMENTS.md")).read()
        for artifact in ["Table 2", "Table 1", "Figures 7–9", "A1", "A2", "A3", "A4", "S1", "S2"]:
            assert artifact in experiments, artifact
