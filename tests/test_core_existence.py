"""Unit tests for existence queries, clique number, and spectrum."""

import itertools

import pytest

from repro.baselines import brute_force_count, clique_number
from repro.core import clique_spectrum, find_clique, max_clique_size
from repro.graphs import (
    clique_chain,
    complete_graph,
    empty_graph,
    from_edges,
    gnm_random_graph,
    hypercube_graph,
    plant_cliques,
    turan_graph,
)


class TestFindClique:
    def test_returns_actual_clique(self):
        g = gnm_random_graph(40, 250, seed=1)
        witness = find_clique(g, 4)
        assert witness is not None and len(witness) == 4
        for a, b in itertools.combinations(witness, 2):
            assert g.has_edge(a, b)

    def test_none_when_absent(self):
        assert find_clique(turan_graph(12, 3), 4) is None
        assert find_clique(hypercube_graph(4), 3) is None

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 6])
    def test_agrees_with_counting(self, k, small_random_graphs):
        for g in small_random_graphs:
            expect = brute_force_count(g, k) > 0
            assert (find_clique(g, k) is not None) == expect

    def test_degeneracy_early_cutoff(self):
        # Tree: degeneracy 1 -> no 3-clique; the search must shortcut.
        g = from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
        assert find_clique(g, 3) is None

    def test_trivial_sizes(self):
        g = from_edges([(0, 1)])
        assert find_clique(g, 1) == (0,)
        assert find_clique(g, 2) == (0, 1)
        assert find_clique(empty_graph(0), 1) is None

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            find_clique(empty_graph(3), 0)

    def test_planted_witness(self):
        base = gnm_random_graph(200, 400, seed=2)
        g, planted = plant_cliques(base, [8], seed=3)
        witness = find_clique(g, 8)
        assert witness is not None


class TestMaxCliqueSize:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_bron_kerbosch(self, seed):
        g = gnm_random_graph(35, 180, seed=seed)
        assert max_clique_size(g) == clique_number(g)

    def test_known_graphs(self):
        assert max_clique_size(complete_graph(7)) == 7
        assert max_clique_size(turan_graph(12, 4)) == 4
        assert max_clique_size(hypercube_graph(3)) == 2
        assert max_clique_size(empty_graph(5)) == 1
        assert max_clique_size(empty_graph(0)) == 0

    def test_clique_chain(self):
        assert max_clique_size(clique_chain(3, 6, overlap=2)) == 6


class TestSpectrum:
    def test_matches_per_k_counts(self):
        g = gnm_random_graph(30, 150, seed=4)
        spectrum = clique_spectrum(g)
        for k, count in spectrum.items():
            if k <= 6:
                assert count == brute_force_count(g, k), k

    def test_zero_tail(self):
        g = clique_chain(2, 4)
        spectrum = clique_spectrum(g, k_max=10)
        assert spectrum[4] == 2
        assert all(spectrum[k] == 0 for k in range(5, 11))

    def test_spectrum_bounds_by_degeneracy(self):
        from repro.analysis import per_size_clique_bound
        from repro.orders import degeneracy_order

        g = gnm_random_graph(40, 220, seed=5)
        s = degeneracy_order(g).degeneracy
        for k, count in clique_spectrum(g).items():
            assert count <= per_size_clique_bound(g.num_vertices, s, k)

    def test_k1_is_n(self):
        g = gnm_random_graph(17, 30, seed=6)
        assert clique_spectrum(g)[1] == 17

    def test_empty_graph(self):
        assert clique_spectrum(empty_graph(0)) == {}

    def test_total_cliques_within_wood_bound(self):
        from repro.analysis import wood_total_clique_bound
        from repro.orders import degeneracy_order

        g = gnm_random_graph(30, 160, seed=7)
        s = degeneracy_order(g).degeneracy
        total = sum(clique_spectrum(g).values())
        assert total <= wood_total_clique_bound(30, s)
