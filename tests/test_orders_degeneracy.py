"""Unit tests for the exact degeneracy order (Matula–Beck peeling)."""

import numpy as np
import pytest

from repro.graphs import (
    clique_chain,
    complete_graph,
    empty_graph,
    from_edges,
    gnm_random_graph,
    hypercube_graph,
    orient_by_order,
)
from repro.orders import core_numbers, degeneracy_order
from tests.conftest import nx_graph


class TestKnownValues:
    def test_complete_graph(self):
        res = degeneracy_order(complete_graph(7))
        assert res.degeneracy == 6

    def test_tree_is_1_degenerate(self):
        g = from_edges([(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)])
        assert degeneracy_order(g).degeneracy == 1

    def test_cycle_is_2_degenerate(self):
        g = from_edges([(i, (i + 1) % 6) for i in range(6)])
        assert degeneracy_order(g).degeneracy == 2

    def test_star_is_1_degenerate(self):
        # §1.1: the star has unbounded max degree but degeneracy 1.
        g = from_edges([(0, i) for i in range(1, 30)])
        res = degeneracy_order(g)
        assert res.degeneracy == 1
        assert g.degree(0) == 29

    def test_hypercube(self):
        # §1.1: the d-dimensional hypercube has degeneracy d.
        assert degeneracy_order(hypercube_graph(4)).degeneracy == 4

    def test_empty(self):
        res = degeneracy_order(empty_graph(5))
        assert res.degeneracy == 0
        assert res.order.size == 5

    def test_no_vertices(self):
        res = degeneracy_order(empty_graph(0))
        assert res.order.size == 0


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(6))
    def test_core_numbers_match(self, seed):
        import networkx as nx

        g = gnm_random_graph(60, 200 + 10 * seed, seed=seed)
        ours = core_numbers(g)
        theirs = nx.core_number(nx_graph(g))
        assert all(ours[v] == theirs[v] for v in range(60))

    @pytest.mark.parametrize("seed", range(6))
    def test_degeneracy_matches(self, seed):
        import networkx as nx

        g = gnm_random_graph(60, 150 + 20 * seed, seed=seed + 100)
        assert degeneracy_order(g).degeneracy == max(
            nx.core_number(nx_graph(g)).values()
        )


class TestOrderProperty:
    @pytest.mark.parametrize("seed", range(5))
    def test_out_degree_bounded_by_degeneracy(self, seed):
        g = gnm_random_graph(80, 300, seed=seed)
        res = degeneracy_order(g)
        dag = orient_by_order(g, res.order)
        assert dag.max_out_degree <= res.degeneracy

    def test_order_is_permutation(self):
        g = gnm_random_graph(40, 100, seed=9)
        res = degeneracy_order(g)
        assert np.array_equal(np.sort(res.order), np.arange(40))

    def test_rank_inverts_order(self):
        g = gnm_random_graph(40, 100, seed=9)
        res = degeneracy_order(g)
        assert np.array_equal(res.order[res.rank], np.arange(40))

    def test_clique_chain_degeneracy(self):
        # Chain of 5-cliques has degeneracy 4.
        g = clique_chain(4, 5, overlap=1)
        assert degeneracy_order(g).degeneracy == 4

    def test_core_monotone_along_order(self):
        # Core numbers are non-decreasing in removal order.
        g = gnm_random_graph(60, 240, seed=12)
        res = degeneracy_order(g)
        cores_in_order = res.core[res.order]
        assert np.all(np.diff(cores_in_order) >= 0)


class TestCost:
    def test_linear_depth_charged(self):
        from repro.pram.tracker import Tracker

        g = gnm_random_graph(100, 300, seed=1)
        t = Tracker()
        degeneracy_order(g, tracker=t)
        assert t.depth >= 100  # Θ(n) sequential peel
        assert t.work >= t.depth
