"""Integration tests: full pipelines across modules, end to end."""

import numpy as np
import pytest

from repro import count_cliques, list_cliques
from repro.analysis import BoundInputs, graph_summary, work_best, work_kclist
from repro.baselines import clique_number, kclist_count
from repro.bench import load_dataset, run_experiment, sweep
from repro.graphs import (
    gnm_random_graph,
    plant_cliques,
    powerlaw_cluster_graph,
    save_npz,
    load_npz,
)
from repro.orders import community_degeneracy, degeneracy_order
from repro.pram.tracker import Tracker


class TestPlantedCliqueRecovery:
    def test_planted_cliques_are_found(self):
        base = gnm_random_graph(300, 900, seed=1)
        g, planted = plant_cliques(base, [9, 8], seed=2)
        cliques9 = list_cliques(g, 9)
        assert tuple(sorted(planted[0].tolist())) in cliques9
        assert clique_number(g) >= 9

    def test_counts_track_planted_structure(self):
        import math

        base = gnm_random_graph(400, 600, seed=3)  # sparse: few natural cliques
        g, _ = plant_cliques(base, [10], seed=4)
        got = count_cliques(g, 8).count
        assert got >= math.comb(10, 8)


class TestFullPipelineOnDataset:
    def test_dataset_pipeline(self):
        g = load_dataset("bio-sc-ht")
        summary = graph_summary(g, "bio", with_sigma=True)
        assert summary.community_degeneracy < summary.degeneracy

        # The reference engine pays the cold preprocessing and keeps the
        # full search instrumentation.
        tr_ref = Tracker()
        ref = count_cliques(g, 6, tracker=tr_ref, engine="reference")
        assert ref.count == kclist_count(g, 6).count
        assert tr_ref.work > 0
        assert set(tr_ref.phases) >= {"orientation", "communities", "search"}

        # Auto dispatch lands on the batch frontier engine for k >= 4
        # counting; riding the now-warm façade cache it charges only its
        # own table build (the frontier rounds themselves are untracked
        # numpy).
        tr = Tracker()
        res = count_cliques(g, 6, tracker=tr)
        assert res.count == ref.count
        assert res.engine == "frontier"
        assert "bitrows" in tr.phases

    def test_sweep_and_bounds_shape(self):
        # The bound formulas compare the *search* terms (preprocessing is
        # an additive O(m·s̃) both sides pay); at this scale c3List's
        # community build dominates total work, so the shape claim is
        # checked on the search phase — the quantity the k-dependent
        # factors of Table 1 actually describe.
        from repro.bench.harness import ALGORITHMS

        g = load_dataset("gearbox")
        s = degeneracy_order(g).degeneracy
        ratios = {}
        for k in (6, 8):
            search = {}
            for algo in ("c3list", "kclist"):
                tr = Tracker()
                res = ALGORITHMS[algo](g, k, tr)
                search[algo] = (res.count, tr.phases["search"].work)
            assert search["c3list"][0] == search["kclist"][0]
            ratios[k] = search["kclist"][1] / search["c3list"][1]
        p6 = BoundInputs(n=g.num_vertices, m=g.num_edges, k=6, s=s)
        p8 = BoundInputs(n=g.num_vertices, m=g.num_edges, k=8, s=s)
        predicted6 = work_kclist(p6) / work_best(p6)
        predicted8 = work_kclist(p8) / work_best(p8)
        assert predicted8 > predicted6  # the theory's direction
        assert ratios[8] > ratios[6]  # ...and the measurement follows it
        assert ratios[8] > 1.0  # c3List's search work wins outright


class TestPersistenceRoundTrip:
    def test_save_count_reload_count(self, tmp_path):
        g = powerlaw_cluster_graph(200, 4, 0.5, seed=5)
        expected = count_cliques(g, 5).count
        path = tmp_path / "g.npz"
        save_npz(g, path)
        assert count_cliques(load_npz(path), 5).count == expected


class TestSimulatedParallelism:
    def test_72_thread_simulation_consistency(self):
        g = load_dataset("ca-dblp-2012")
        m = run_experiment(g, 6, "c3list", repeats=1)
        # T_p interpolates between depth and work.
        assert m.depth <= m.t72 <= m.work + m.depth
        t1 = m.simulated_time(1)
        assert t1 == pytest.approx(m.work + m.depth)
        assert m.t72 < t1

    def test_speedup_grows_with_work(self):
        from repro.pram.schedule import speedup_curve
        from repro.pram.cost import Cost

        g = load_dataset("gearbox")
        m = run_experiment(g, 7, "c3list", repeats=1)
        curve = speedup_curve(Cost(m.work, m.depth), [1, 8, 72])
        assert curve[72][1] > curve[8][1] > curve[1][1]
