"""Property-based differential tests of the dynamic mutation layer.

Three properties over the fuzz subsystem's generators (arbitrary small
graphs, the 12 seeded families, and the 3 seeded mutators):

* **round-trip** — ``insert(batch)`` then ``delete(batch)`` (and the
  reverse) restores the original counts, listings, and edge set;
* **batch = singles** — one batch mutation equals the same edges applied
  as sequential single-edge batches;
* **incremental = scratch** — driving a :class:`DynamicGraph` to any
  mutated family instance yields the counts of a cold recompute there.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.frontier import frontier_count_cliques
from repro.core.prepared import PreparedGraph
from repro.dynamic import DynamicGraph, random_trace
from repro.fuzz.strategies import (
    MUTATORS,
    derive_seed,
    edge_list,
    family_cases,
    random_graphs,
)

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def scratch(graph, k):
    return frontier_count_cliques(graph, k, prepared=PreparedGraph(graph))


def batches_between(old, new):
    """Insert/delete batches that drive ``old``'s edge set to ``new``'s."""
    before = set(edge_list(old))
    after = set(edge_list(new))
    return sorted(after - before), sorted(before - after)


@given(g=random_graphs(max_n=12), k=st.integers(3, 5), seed=st.integers(0, 2**20))
@settings(**SETTINGS)
def test_insert_delete_round_trips(g, k, seed):
    dyn = DynamicGraph(g)
    before = dyn.count(k)
    listing = dyn.cliques(k)
    trace = random_trace(g, batches=2, batch_size=3, seed=seed)
    dyn.apply_trace(trace)
    for step in reversed(trace):
        inverse = "delete" if step["op"] == "insert" else "insert"
        dyn.apply_trace([{"op": inverse, "batch": step["batch"]}])
    assert dyn.graph == g
    assert dyn.count(k) == before
    assert dyn.cliques(k) == listing


@given(g=random_graphs(max_n=12), k=st.integers(3, 5), seed=st.integers(0, 2**20))
@settings(**SETTINGS)
def test_batch_equals_sequential_singles(g, k, seed):
    trace = random_trace(g, batches=1, batch_size=4, seed=seed)
    if not trace:
        return
    op, batch = trace[0]["op"], [tuple(p) for p in trace[0]["batch"]]
    as_batch = DynamicGraph(g)
    as_batch.count(k)
    as_batch._mutate(op, batch)
    one_by_one = DynamicGraph(g)
    one_by_one.count(k)
    for pair in batch:
        one_by_one._mutate(op, [pair])
    assert as_batch.graph == one_by_one.graph
    assert as_batch.count(k) == one_by_one.count(k)
    assert as_batch.count(k) == scratch(as_batch.graph, k)


@given(case=family_cases(max_vertices=18), data=st.data())
@settings(**SETTINGS)
def test_incremental_equals_scratch_on_fuzz_families(case, data):
    g = case.build()
    name = data.draw(st.sampled_from(sorted(MUTATORS)), label="mutator")
    seed = data.draw(st.integers(0, 2**20), label="seed")
    mutated = MUTATORS[name](g, count=3, seed=derive_seed(seed, name))
    inserts, deletes = batches_between(g, mutated)
    dyn = DynamicGraph(g, verify=True)
    dyn.count(4)
    dyn.cliques(4)
    if deletes:
        dyn.delete_edges(deletes)
    if inserts:
        dyn.insert_edges(inserts)
    assert dyn.graph == mutated
    assert dyn.count(4) == scratch(mutated, 4)
