"""Unit tests for the six Table-1 variants (§4)."""

import numpy as np
import pytest

from repro.baselines import brute_force_count, brute_force_list
from repro.core import VARIANTS, run_variant
from repro.graphs import (
    bipartite_plus_line_graph,
    clique_chain,
    complete_graph,
    empty_graph,
    gnm_random_graph,
)
from repro.pram.tracker import Tracker


class TestAgreementAcrossVariants:
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("k", [4, 5, 6])
    def test_counts_match_oracle(self, variant, k, small_random_graphs):
        for g in small_random_graphs[:4]:
            expected = brute_force_count(g, k)
            got = run_variant(g, k, variant, Tracker()).count
            assert got == expected, (variant, k)

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_trivial_k_sizes(self, variant):
        g = gnm_random_graph(18, 60, seed=1)
        assert run_variant(g, 1, variant, Tracker()).count == 18
        assert run_variant(g, 2, variant, Tracker()).count == 60
        assert (
            run_variant(g, 3, variant, Tracker()).count
            == brute_force_count(g, 3)
        )

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_listing_matches_oracle(self, variant):
        g = gnm_random_graph(20, 90, seed=2)
        res = run_variant(g, 4, variant, Tracker(), collect=True)
        assert sorted(res.cliques) == sorted(brute_force_list(g, 4))

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            run_variant(complete_graph(4), 4, "fastest", Tracker())

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            run_variant(complete_graph(4), 0, "best-work", Tracker())


class TestStructuredInstances:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_clique_chain(self, variant):
        g = clique_chain(3, 7, overlap=2)
        expected = brute_force_count(g, 5)
        assert run_variant(g, 5, variant, Tracker()).count == expected

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_bipartite_plus_line_no_k4(self, variant):
        # σ=1 family: contains triangles but no 4-clique.
        g = bipartite_plus_line_graph(8)
        assert run_variant(g, 4, variant, Tracker()).count == 0

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_empty_graph(self, variant):
        assert run_variant(empty_graph(9), 4, variant, Tracker()).count == 0


class TestWorkDepthTradeoffs:
    def test_best_depth_has_lower_depth_than_best_work(self):
        g = gnm_random_graph(300, 1500, seed=3)
        t_work, t_depth = Tracker(), Tracker()
        run_variant(g, 4, "best-work", t_work)
        run_variant(g, 4, "best-depth", t_depth)
        # best-work pays the Θ(n) sequential peel; best-depth is polylog.
        assert t_depth.depth < t_work.depth

    def test_hybrid_depth_between(self):
        g = gnm_random_graph(300, 1500, seed=4)
        trackers = {}
        for v in ("best-work", "hybrid", "best-depth"):
            tr = Tracker()
            run_variant(g, 4, v, tr)
            trackers[v] = tr.depth
        assert trackers["hybrid"] < trackers["best-work"]

    def test_cd_best_work_uses_sigma_sized_sets(self):
        g = gnm_random_graph(60, 280, seed=5)
        res = run_variant(g, 4, "cd-best-work", Tracker())
        from repro.orders import community_degeneracy

        assert res.gamma <= community_degeneracy(g)

    def test_pruning_flag_preserves_count(self):
        g = gnm_random_graph(25, 110, seed=6)
        a = run_variant(g, 5, "best-work", Tracker(), prune=True).count
        b = run_variant(g, 5, "best-work", Tracker(), prune=False).count
        assert a == b

    def test_eps_variants(self):
        g = gnm_random_graph(40, 180, seed=7)
        for eps in (0.1, 0.5, 1.5):
            got = run_variant(g, 4, "best-depth", Tracker(), eps=eps).count
            assert got == brute_force_count(g, 4)
