"""Unit tests for the orientation façade and order diagnostics."""

import numpy as np
import pytest

from repro.graphs import gnm_random_graph
from repro.orders import order_quality, oriented_by
from repro.orders.degeneracy import degeneracy_order


class TestOrientedBy:
    @pytest.mark.parametrize(
        "kind", ["degeneracy", "approx-degeneracy", "degree", "id"]
    )
    def test_all_kinds_produce_valid_dags(self, kind):
        g = gnm_random_graph(40, 160, seed=1)
        dag = oriented_by(g, kind=kind)
        assert dag.num_edges == g.num_edges
        for v in range(40):
            assert np.all(dag.out_neighbors(v) > v)

    def test_degeneracy_kind_minimizes_out_degree(self):
        g = gnm_random_graph(60, 300, seed=2)
        s = degeneracy_order(g).degeneracy
        exact = oriented_by(g, "degeneracy")
        ident = oriented_by(g, "id")
        assert exact.max_out_degree <= s
        assert exact.max_out_degree <= ident.max_out_degree

    def test_unknown_kind_rejected(self):
        g = gnm_random_graph(10, 20, seed=3)
        with pytest.raises(ValueError):
            oriented_by(g, "lexicographic")


class TestOrderQuality:
    def test_gamma_below_out_degree(self):
        # γ <= s̃ - 1 (§4.1: community size is at most max out-degree - 1).
        g = gnm_random_graph(50, 250, seed=4)
        q = order_quality(oriented_by(g, "degeneracy"))
        assert q.max_community <= max(q.max_out_degree - 1, 0)

    def test_quality_reports_edges_and_triangles(self):
        g = gnm_random_graph(50, 250, seed=4)
        q = order_quality(oriented_by(g, "degeneracy"))
        assert q.num_edges == 250
        assert q.num_triangles >= 0

    def test_triangle_count_invariant_under_order(self):
        g = gnm_random_graph(50, 250, seed=5)
        qa = order_quality(oriented_by(g, "degeneracy"))
        qb = order_quality(oriented_by(g, "id"))
        qc = order_quality(oriented_by(g, "approx-degeneracy"))
        assert qa.num_triangles == qb.num_triangles == qc.num_triangles
