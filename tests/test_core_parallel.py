"""Unit tests for the process-parallel counting wrapper."""

import pytest

from repro.baselines import brute_force_count
from repro.core import count_cliques_parallel
from repro.graphs import complete_graph, empty_graph, gnm_random_graph
from repro.pram.executor import parallel_map_reduce, worker_state


def _reentrant_worker(chunk, k):
    # Counting inside a worker dispatches a nested parallel_map_reduce
    # whose state must not leak into (or clobber) this dispatch's state.
    graph, tag = worker_state()
    inner = count_cliques_parallel(graph, k, n_workers=1)
    assert worker_state()[1] == tag
    return inner * int(chunk.size)


class TestSequentialPath:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_matches_oracle(self, k, small_random_graphs):
        for g in small_random_graphs:
            assert count_cliques_parallel(g, k, n_workers=1) == brute_force_count(
                g, k
            )

    def test_no_eligible_edges(self):
        g = gnm_random_graph(20, 25, seed=1)  # sparse, no big communities
        result = count_cliques_parallel(g, 9, n_workers=1)
        # The empty reduction returns an explicit int 0, never None
        # (executor contract: initial=0 is the monoid identity).
        assert result == 0 and type(result) is int

    def test_reentrant_nested_dispatch(self):
        # Regression: a worker that itself calls count_cliques_parallel
        # used to clobber the module-global shared state of the outer
        # dispatch; the executor's state stack keeps them separate.
        g = complete_graph(8)
        expected = count_cliques_parallel(g, 4, n_workers=1)
        total = parallel_map_reduce(
            _reentrant_worker,
            3,
            args=(4,),
            n_workers=1,
            state=(g, "outer"),
            initial=0,
        )
        assert total == expected * 3

    def test_empty(self):
        assert count_cliques_parallel(empty_graph(4), 4, n_workers=1) == 0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            count_cliques_parallel(empty_graph(4), 0)


class TestMultiprocessPath:
    def test_two_workers_match_one(self):
        g = gnm_random_graph(60, 400, seed=2)
        seq = count_cliques_parallel(g, 4, n_workers=1)
        par = count_cliques_parallel(g, 4, n_workers=2)
        assert seq == par

    def test_matches_main_engine(self):
        from repro import count_cliques

        g = complete_graph(12)
        assert count_cliques_parallel(g, 6, n_workers=2) == count_cliques(g, 6).count
