"""Unit tests for graph orientation by a total order."""

import numpy as np
import pytest

from repro.graphs import (
    complete_graph,
    from_edges,
    gnm_random_graph,
    orient_by_order,
    orient_by_rank,
)


def triangle_plus_tail():
    return from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])


class TestOrientation:
    def test_identity_order(self):
        g = triangle_plus_tail()
        dag = orient_by_order(g, np.arange(4))
        assert np.array_equal(dag.out_neighbors(0), [1, 2])
        assert np.array_equal(dag.out_neighbors(2), [3])
        assert dag.num_edges == g.num_edges

    def test_out_neighbors_always_larger(self):
        g = gnm_random_graph(50, 200, seed=3)
        order = np.random.default_rng(0).permutation(50)
        dag = orient_by_order(g, order)
        for v in range(50):
            assert np.all(dag.out_neighbors(v) > v)

    def test_in_neighbors_always_smaller(self):
        g = gnm_random_graph(50, 200, seed=3)
        dag = orient_by_order(g, np.arange(50))
        for v in range(50):
            assert np.all(dag.in_neighbors(v) < v)

    def test_in_out_consistency(self):
        g = gnm_random_graph(30, 100, seed=4)
        dag = orient_by_order(g, np.arange(30))
        for u in range(30):
            for v in dag.out_neighbors(u).tolist():
                assert u in dag.in_neighbors(v).tolist()

    def test_reversed_order_flips_edges(self):
        g = triangle_plus_tail()
        dag = orient_by_order(g, np.array([3, 2, 1, 0]))
        # vertex 3 is first in the order -> relabeled 0.
        assert np.array_equal(dag.original_ids, [3, 2, 1, 0])
        assert dag.out_degree(0) == 1  # 3 -> 2 only

    def test_invalid_order_rejected(self):
        g = triangle_plus_tail()
        with pytest.raises(ValueError):
            orient_by_order(g, np.array([0, 1, 2]))  # wrong length
        with pytest.raises(ValueError):
            orient_by_order(g, np.array([0, 1, 2, 2]))  # not a permutation

    def test_rank_and_order_agree(self):
        g = gnm_random_graph(20, 60, seed=8)
        order = np.random.default_rng(1).permutation(20)
        rank = np.empty(20, dtype=np.int64)
        rank[order] = np.arange(20)
        a = orient_by_order(g, order)
        b = orient_by_rank(g, rank)
        assert np.array_equal(a.out_indptr, b.out_indptr)
        assert np.array_equal(a.out_indices, b.out_indices)
        assert np.array_equal(a.original_ids, b.original_ids)


class TestEdgeAccess:
    def test_has_edge_and_id(self):
        g = triangle_plus_tail()
        dag = orient_by_order(g, np.arange(4))
        assert dag.has_edge(0, 1)
        assert not dag.has_edge(1, 0)
        eid = dag.edge_id(0, 2)
        us, vs = dag.edge_endpoints()
        assert (us[eid], vs[eid]) == (0, 2)

    def test_missing_edge_id(self):
        g = triangle_plus_tail()
        dag = orient_by_order(g, np.arange(4))
        assert dag.edge_id(0, 3) == -1

    def test_max_out_degree(self):
        dag = orient_by_order(complete_graph(6), np.arange(6))
        assert dag.max_out_degree == 5


class TestCommunity:
    def test_triangle_community(self):
        g = triangle_plus_tail()
        dag = orient_by_order(g, np.arange(4))
        assert np.array_equal(dag.community(0, 2), [1])
        assert dag.community(0, 1).size == 0

    def test_complete_graph_community(self):
        dag = orient_by_order(complete_graph(5), np.arange(5))
        assert np.array_equal(dag.community(0, 4), [1, 2, 3])

    def test_community_between_endpoints_only(self):
        g = gnm_random_graph(40, 150, seed=9)
        dag = orient_by_order(g, np.arange(40))
        us, vs = dag.edge_endpoints()
        for j in range(0, dag.num_edges, 7):
            c = dag.community(int(us[j]), int(vs[j]))
            assert np.all((c > us[j]) & (c < vs[j]))


class TestRoundTrip:
    def test_to_undirected_recovers_graph(self):
        g = gnm_random_graph(25, 80, seed=10)
        order = np.random.default_rng(2).permutation(25)
        dag = orient_by_order(g, order)
        back = dag.to_undirected()
        # Same number of edges; degree multiset preserved under relabeling.
        assert back.num_edges == g.num_edges
        assert sorted(back.degrees.tolist()) == sorted(g.degrees.tolist())
