"""Unit tests for the baseline algorithms (kClist, ArbCount, Chiba–Nishizeki,
Bron–Kerbosch, brute force)."""

import math

import numpy as np
import pytest

from repro.baselines import (
    arbcount_count,
    brute_force_count,
    brute_force_list,
    chiba_nishizeki_count,
    clique_number,
    kclist_count,
    maximal_cliques,
    maximum_clique,
)
from repro.graphs import (
    clique_chain,
    complete_graph,
    empty_graph,
    gnm_random_graph,
    hypercube_graph,
    turan_graph,
)
from repro.pram.tracker import Tracker
from tests.conftest import nx_graph


class TestKclist:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 6])
    def test_matches_oracle(self, k, small_random_graphs):
        for g in small_random_graphs:
            assert kclist_count(g, k).count == brute_force_count(g, k)

    def test_complete_graph(self):
        g = complete_graph(9)
        for k in (4, 7, 9):
            assert kclist_count(g, k).count == math.comb(9, k)

    def test_listing(self):
        g = gnm_random_graph(20, 90, seed=1)
        res = kclist_count(g, 4, collect=True)
        assert sorted(res.cliques) == sorted(brute_force_list(g, 4))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kclist_count(complete_graph(3), 0)

    def test_cost_tracked(self):
        tr = Tracker()
        kclist_count(gnm_random_graph(30, 150, seed=2), 4, tracker=tr)
        assert tr.work > 0 and tr.depth > 0


class TestArbcount:
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_matches_oracle(self, k, small_random_graphs):
        for g in small_random_graphs:
            assert arbcount_count(g, k).count == brute_force_count(g, k)

    def test_eps_sensitivity(self):
        g = gnm_random_graph(25, 120, seed=3)
        expected = brute_force_count(g, 4)
        for eps in (0.1, 0.5, 2.0):
            assert arbcount_count(g, 4, eps=eps).count == expected

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            arbcount_count(complete_graph(4), 4, eps=0.0)

    def test_lower_depth_than_kclist(self):
        g = gnm_random_graph(400, 2000, seed=4)
        t_k, t_a = Tracker(), Tracker()
        kclist_count(g, 4, tracker=t_k)
        arbcount_count(g, 4, tracker=t_a)
        assert t_a.depth < t_k.depth  # polylog peel vs Θ(n) peel


class TestChibaNishizeki:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_matches_oracle(self, k, small_random_graphs):
        for g in small_random_graphs:
            assert chiba_nishizeki_count(g, k).count == brute_force_count(g, k)

    def test_listing(self):
        g = gnm_random_graph(18, 70, seed=5)
        res = chiba_nishizeki_count(g, 4, collect=True)
        assert sorted(res.cliques) == sorted(brute_force_list(g, 4))

    def test_graph_restored_after_run(self):
        # The procedure mutates then restores its adjacency sets; a second
        # run must see the same graph.
        g = gnm_random_graph(20, 80, seed=6)
        a = chiba_nishizeki_count(g, 4).count
        b = chiba_nishizeki_count(g, 4).count
        assert a == b

    def test_sequential_depth(self):
        tr = Tracker()
        chiba_nishizeki_count(gnm_random_graph(20, 80, seed=6), 4, tracker=tr)
        assert tr.depth == pytest.approx(tr.work, rel=0.5)


class TestBronKerbosch:
    def test_matches_networkx(self, small_random_graphs):
        import networkx as nx

        for g in small_random_graphs:
            ours = sorted(maximal_cliques(g))
            theirs = sorted(tuple(sorted(c)) for c in nx.find_cliques(nx_graph(g)))
            assert ours == theirs

    def test_clique_number_known(self):
        assert clique_number(complete_graph(7)) == 7
        assert clique_number(turan_graph(12, 4)) == 4
        assert clique_number(hypercube_graph(3)) == 2
        assert clique_number(empty_graph(0)) == 0

    def test_maximum_clique_is_clique(self):
        import itertools

        g = gnm_random_graph(30, 200, seed=7)
        best = maximum_clique(g)
        assert len(best) == clique_number(g)
        for a, b in itertools.combinations(best, 2):
            assert g.has_edge(a, b)

    def test_isolated_vertices_are_maximal(self):
        g = empty_graph(3)
        assert sorted(maximal_cliques(g)) == [(0,), (1,), (2,)]


class TestBruteForce:
    def test_k1(self):
        assert brute_force_count(empty_graph(4), 1) == 4

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            brute_force_count(empty_graph(4), 0)

    def test_size_cap(self):
        with pytest.raises(ValueError):
            brute_force_count(empty_graph(100), 3)

    def test_chain(self):
        g = clique_chain(2, 4, overlap=0)
        assert brute_force_count(g, 4) == 2
