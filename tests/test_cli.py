"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graphs import gnm_random_graph, save_npz, write_edge_list


@pytest.fixture
def edge_file(tmp_path):
    g = gnm_random_graph(25, 110, seed=1)
    path = tmp_path / "g.txt"
    write_edge_list(g, path)
    return str(path), g


class TestStats:
    def test_stats_on_file(self, edge_file, capsys):
        path, g = edge_file
        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert str(g.num_edges) in out

    def test_stats_on_dataset(self, capsys):
        assert main(["stats", "bio-sc-ht"]) == 0
        assert "bio-sc-ht" in capsys.readouterr().out

    def test_stats_with_sigma(self, edge_file, capsys):
        path, _ = edge_file
        assert main(["stats", path, "--sigma"]) == 0


class TestCount:
    def test_count_matches_library(self, edge_file, capsys):
        from repro import count_cliques

        path, g = edge_file
        assert main(["count", path, "-k", "4"]) == 0
        out = capsys.readouterr().out
        assert f"4-cliques: {count_cliques(g, 4).count}" in out

    def test_count_with_cost(self, edge_file, capsys):
        path, _ = edge_file
        assert main(["count", path, "-k", "4", "--cost"]) == 0
        out = capsys.readouterr().out
        assert "work" in out and "T_72" in out

    def test_count_variant(self, edge_file, capsys):
        path, _ = edge_file
        assert main(["count", path, "-k", "4", "--variant", "cd-best-work"]) == 0

    def test_npz_input(self, tmp_path, capsys):
        g = gnm_random_graph(15, 40, seed=2)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        assert main(["count", str(path), "-k", "3"]) == 0

    @pytest.mark.parametrize(
        "engine", ["auto", "reference", "frontier", "bitset", "process"]
    )
    def test_count_engine_flag(self, edge_file, capsys, engine):
        from repro import count_cliques

        path, g = edge_file
        expected = count_cliques(g, 4, engine="reference").count
        argv = ["count", path, "-k", "4", "--engine", engine]
        if engine == "process":
            argv += ["--workers", "1"]
        assert main(argv) == 0
        assert f"4-cliques: {expected}" in capsys.readouterr().out

    def test_count_workers_routes_auto_to_process(self, edge_file, capsys):
        from repro import count_cliques

        path, g = edge_file
        expected = count_cliques(g, 4, engine="reference").count
        assert main(["count", path, "-k", "4", "--workers", "2"]) == 0
        assert f"4-cliques: {expected}" in capsys.readouterr().out

    def test_count_bad_engine_rejected(self, edge_file, capsys):
        path, _ = edge_file
        with pytest.raises(SystemExit):  # argparse choices
            main(["count", path, "-k", "4", "--engine", "gpu"])


class TestList:
    def test_list_output(self, edge_file, capsys):
        from repro import list_cliques

        path, g = edge_file
        assert main(["list", path, "-k", "4"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert len(lines) == len(list_cliques(g, 4))

    def test_list_limit(self, edge_file, capsys):
        path, _ = edge_file
        assert main(["list", path, "-k", "3", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) <= 2

    def test_list_frontier_engine_matches_reference(self, edge_file, capsys):
        path, _ = edge_file
        assert main(["list", path, "-k", "4"]) == 0
        ref_out = capsys.readouterr().out
        assert main(["list", path, "-k", "4", "--engine", "frontier"]) == 0
        assert capsys.readouterr().out == ref_out
        assert (
            main(["list", path, "-k", "4", "--engine", "frontier", "--kernelize"])
            == 0
        )
        assert capsys.readouterr().out == ref_out


class TestOtherCommands:
    def test_spectrum(self, edge_file, capsys):
        path, _ = edge_file
        assert main(["spectrum", path]) == 0
        assert "#cliques" in capsys.readouterr().out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "chebyshev4" in out

    def test_bench(self, capsys):
        assert main(["bench", "bio-sc-ht", "-k", "5"]) == 0
        out = capsys.readouterr().out
        assert "c3list" in out and "kclist" in out

    def test_bench_warm_sweep_charges_preprocessing_once(self, capsys):
        # Default bench shares one prepared context per graph: the k=5
        # cell rides on the k=4 cell's preprocessing, so its work column
        # must be strictly smaller than the same cell under --cold
        # (counts unchanged).
        def cells(argv):
            assert main(argv) == 0
            rows = {}
            for line in capsys.readouterr().out.splitlines():
                parts = line.split()
                # columns: graph k algorithm engine count wall work ...
                if len(parts) >= 7 and parts[2] == "c3list":
                    rows[int(parts[1])] = (int(parts[4]), float(parts[6]))
            return rows

        warm = cells(["bench", "bio-sc-ht", "-k", "4", "-k", "5", "--algos", "c3list"])
        cold = cells(
            ["bench", "bio-sc-ht", "-k", "4", "-k", "5", "--algos", "c3list", "--cold"]
        )
        assert warm[4][0] == cold[4][0] and warm[5][0] == cold[5][0]
        assert warm[4][1] == cold[4][1]  # first cell pays the build either way
        assert warm[5][1] < cold[5][1]  # later cells ride the shared context


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["stats", "/nonexistent/file.txt"]) == 1
        assert "error" in capsys.readouterr().err

    def test_bad_k(self, edge_file, capsys):
        path, _ = edge_file
        assert main(["count", path, "-k", "0"]) == 1


class TestFuzz:
    def test_clean_run_exits_zero(self, capsys):
        assert main(["fuzz", "--budget", "4", "--seed", "0",
                     "--oracle", "engines", "-k", "4", "--max-n", "12"]) == 0
        out = capsys.readouterr().out
        assert "fuzz OK" in out and "4 cases" in out

    def test_out_report_includes_metrics(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "report.json"
        assert main(["fuzz", "--budget", "3", "--oracle", "relabel",
                     "-k", "4", "--max-n", "12", "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["ok"] is True
        assert payload["cases"] == 3
        assert payload["metrics"]["fuzz.cases"]["value"] == 3

    def test_violation_exits_four_and_emits(self, tmp_path, capsys):
        from repro.fuzz.oracles import count_perturbation

        def lie(engine, graph, k, true_count):
            return true_count + 1 if engine == "frontier" and true_count > 0 else true_count

        emit_dir = tmp_path / "regressions"
        with count_perturbation(lie):
            code = main(["fuzz", "--budget", "30", "--seed", "0",
                         "--oracle", "engines", "-k", "4", "--max-n", "14",
                         "--emit-regression", str(emit_dir)])
        assert code == 4
        out = capsys.readouterr().out
        assert "fuzz FAILED" in out and "VIOLATION" in out
        assert list(emit_dir.glob("test_fuzz_regression_*.py"))

    def test_unknown_oracle_is_an_error(self, capsys):
        assert main(["fuzz", "--budget", "1", "--oracle", "nope"]) == 1
        assert "unknown oracle" in capsys.readouterr().err
