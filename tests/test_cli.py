"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graphs import gnm_random_graph, save_npz, write_edge_list


@pytest.fixture
def edge_file(tmp_path):
    g = gnm_random_graph(25, 110, seed=1)
    path = tmp_path / "g.txt"
    write_edge_list(g, path)
    return str(path), g


class TestStats:
    def test_stats_on_file(self, edge_file, capsys):
        path, g = edge_file
        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert str(g.num_edges) in out

    def test_stats_on_dataset(self, capsys):
        assert main(["stats", "bio-sc-ht"]) == 0
        assert "bio-sc-ht" in capsys.readouterr().out

    def test_stats_with_sigma(self, edge_file, capsys):
        path, _ = edge_file
        assert main(["stats", path, "--sigma"]) == 0


class TestCount:
    def test_count_matches_library(self, edge_file, capsys):
        from repro import count_cliques

        path, g = edge_file
        assert main(["count", path, "-k", "4"]) == 0
        out = capsys.readouterr().out
        assert f"4-cliques: {count_cliques(g, 4).count}" in out

    def test_count_with_cost(self, edge_file, capsys):
        path, _ = edge_file
        assert main(["count", path, "-k", "4", "--cost"]) == 0
        out = capsys.readouterr().out
        assert "work" in out and "T_72" in out

    def test_count_variant(self, edge_file, capsys):
        path, _ = edge_file
        assert main(["count", path, "-k", "4", "--variant", "cd-best-work"]) == 0

    def test_npz_input(self, tmp_path, capsys):
        g = gnm_random_graph(15, 40, seed=2)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        assert main(["count", str(path), "-k", "3"]) == 0


class TestList:
    def test_list_output(self, edge_file, capsys):
        from repro import list_cliques

        path, g = edge_file
        assert main(["list", path, "-k", "4"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert len(lines) == len(list_cliques(g, 4))

    def test_list_limit(self, edge_file, capsys):
        path, _ = edge_file
        assert main(["list", path, "-k", "3", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) <= 2


class TestOtherCommands:
    def test_spectrum(self, edge_file, capsys):
        path, _ = edge_file
        assert main(["spectrum", path]) == 0
        assert "#cliques" in capsys.readouterr().out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "chebyshev4" in out

    def test_bench(self, capsys):
        assert main(["bench", "bio-sc-ht", "-k", "5"]) == 0
        out = capsys.readouterr().out
        assert "c3list" in out and "kclist" in out


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["stats", "/nonexistent/file.txt"]) == 1
        assert "error" in capsys.readouterr().err

    def test_bad_k(self, edge_file, capsys):
        path, _ = edge_file
        assert main(["count", path, "-k", "0"]) == 1
