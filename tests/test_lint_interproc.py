"""Interprocedural rules R5-R8, SARIF/github reporters, and --changed."""

from __future__ import annotations

import json
import os
import subprocess

import pytest

from repro.cli import main
from repro.lint import (
    ALL_RULES,
    ChangedFilesError,
    Finding,
    changed_python_files,
    format_github,
    format_sarif,
    rules_by_id,
    run_lint,
)
from repro.lint.core import parse_module, run_rules
from repro.lint.rules_contracts import parse_bound
from repro.lint.rules_obs import ObsDriftRule, parse_obs_doc

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "lint_fixtures")
PKG = os.path.join(FIXTURES, "pkg")
REPO = os.path.dirname(HERE)


def _fixture(name: str) -> str:
    return os.path.join(FIXTURES, f"{name}.py")


def _by_symbol(findings) -> dict:
    out: dict = {}
    for f in findings:
        out.setdefault(f.symbol, []).append(f.message)
    return out


# -- R5: parallel-region escape --------------------------------------------


def test_r5_catches_global_mutation_two_hops_below_the_worker():
    findings = run_lint([PKG])
    assert findings, "the seeded escape must be found"
    assert {f.rule for f in findings} == {"R5"}
    [f] = [f for f in findings if f.symbol == "tally"]
    assert f.path.endswith(os.path.join("pkg", "leaf.py"))
    assert "module global '_TALLY'" in f.message
    # The finding carries the witness chain: entry -> hop -> sink.
    assert "via '_worker' -> 'go_left' -> 'tally'" in f.message
    # Same defect, not reachable from any worker: R5 has no jurisdiction.
    assert not [f for f in findings if f.symbol == "reset_registry"]


# -- R6: frozen-array discipline -------------------------------------------


def test_r6_unsealed_buffers_and_frozen_param_mutations():
    findings = run_lint([_fixture("seeded_r6")])
    assert findings and all(f.rule == "R6" for f in findings)
    by_symbol = _by_symbol(findings)
    assert set(by_symbol) == {
        "LeakyTable.__init__",
        "LeakyTable.rows",
        "LeakyTable.head",
        "scale_in_place",
    }
    assert any("never seals it" in m for m in by_symbol["LeakyTable.__init__"])
    # The acceptance case: a constructor-born buffer returned unsealed.
    assert any(
        "unsealed internal buffer 'data'" in m for m in by_symbol["LeakyTable.rows"]
    )
    # A subscript view aliases the same memory.
    assert any(
        "unsealed internal buffer 'data'" in m for m in by_symbol["LeakyTable.head"]
    )
    # Frozen: parameter — store, in-place mutator, out= target.
    msgs = " | ".join(by_symbol["scale_in_place"])
    assert len(by_symbol["scale_in_place"]) == 3
    assert "writes into parameter 'table'" in msgs
    assert ".sort()" in msgs
    assert "out= target" in msgs


# -- R7: PRAM contract certifier -------------------------------------------


def test_parse_bound_dominant_term_ordering():
    assert parse_bound("1") == (0, 0)
    assert parse_bound("log n") == (0, 1)
    assert parse_bound("n") == (1, 0)
    assert parse_bound("n + m") == (1, 0)
    assert parse_bound("n log n") == (1, 1)
    assert parse_bound("n^2") == (2, 0)
    assert parse_bound("n**2") == (2, 0)
    assert parse_bound("m + n log n") == (1, 1)
    assert parse_bound("n^2") > parse_bound("n log n") > parse_bound("n")


def test_r7_certifies_declared_contracts():
    findings = run_lint([_fixture("seeded_r7")])
    assert findings and all(f.rule == "R7" for f in findings)
    by_symbol = _by_symbol(findings)
    assert set(by_symbol) == {"pairwise_overlap", "claims_linear"}
    msgs = " | ".join(by_symbol["pairwise_overlap"])
    assert "nests 2 data-dependent loop(s)" in msgs
    assert "declares Depth: O(log n)" in msgs
    [callee_msg] = by_symbol["claims_linear"]
    assert "'quadratic_helper'" in callee_msg
    assert "O(n^2) exceeds it" in callee_msg


# -- R8: instrumentation drift ---------------------------------------------

_OBS_DOC = """\
## Phases

| phase | meaning |
| --- | --- |
| `setup` | preparation |
| `ghost` | documented but never opened |

## Metrics

| metric | kind |
| --- | --- |
| `run.count` | counter |
| `run.<mode>.ms` | histogram |
| `old.metric` | gauge |
"""

_OBS_MOD = """\
def go(tracker, metrics, mode):
    with tracker.phase("setup"):
        pass
    with tracker.phase("mystery"):
        pass
    metrics.counter("run.count")
    metrics.histogram(f"run.{mode}.ms")
    metrics.gauge("run.undocumented")
"""


def test_parse_obs_doc_tables_and_placeholders():
    metrics, phases = parse_obs_doc(_OBS_DOC)
    assert set(phases) == {"setup", "ghost"}
    assert set(metrics) == {"run.count", "run.*.ms", "old.metric"}


def test_r8_reports_drift_in_both_directions(tmp_path):
    (tmp_path / "mod.py").write_text(_OBS_MOD, encoding="utf-8")
    doc = tmp_path / "OBS.md"
    doc.write_text(_OBS_DOC, encoding="utf-8")
    mod = parse_module(str(tmp_path / "mod.py"), root=str(tmp_path))
    findings = run_rules(
        [mod], [ObsDriftRule(doc_path=str(doc))], root=str(tmp_path)
    )
    msgs = [f.message for f in findings]
    assert any("phase 'mystery'" in m for m in msgs)
    assert any("metric 'run.undocumented'" in m for m in msgs)
    assert any("documented phase 'ghost'" in m for m in msgs)
    assert any("documented metric 'old.metric'" in m for m in msgs)
    # The f-string call site matches its <mode> placeholder row, so the
    # pattern is neither "missing" nor "never recorded".
    assert not any("run.*.ms" in m for m in msgs)
    assert not any("'setup'" in m or "'run.count'" in m for m in msgs)
    # Doc-side findings land at the doc path, code-side at the module.
    assert {f.path for f in findings if f.symbol == "<docs>"} == {"OBS.md"}
    assert {f.path for f in findings if f.symbol == "go"} == {"mod.py"}


def test_r8_stale_direction_gated_on_full_coverage():
    # A partial scan (one fixture file against the real repo doc) proves
    # nothing about absence: no "documented but never used" findings.
    findings = run_lint([_fixture("clean")])
    assert not [f for f in findings if f.symbol == "<docs>"]


# -- reporters --------------------------------------------------------------


def test_sarif_output_is_valid_and_fingerprinted():
    findings = run_lint([_fixture("seeded_r6")])
    doc = json.loads(
        format_sarif(findings, grandfathered=findings[:1], rules=ALL_RULES)
    )
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {f"R{i}" for i in range(1, 9)} <= rule_ids
    results = run["results"]
    assert len(results) == len(findings) + 1
    for r in results:
        assert r["partialFingerprints"]["reproLint/v1"]
        region = r["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1
    suppressed = [r for r in results if "suppressions" in r]
    assert len(suppressed) == 1
    assert suppressed[0]["suppressions"][0]["kind"] == "external"


def test_github_format_escapes_and_summarizes():
    f = Finding("R5", "src/a.py", 3, 0, "w", "bad, very bad\nsecond line")
    out = format_github([f], grandfathered=[f])
    lines = out.splitlines()
    assert lines[0].startswith("::error file=src/a.py,line=3,col=1,")
    assert "title=repro-lint R5" in lines[0]
    assert "%0A" in lines[0]  # the newline never splits the command
    assert "::notice::1 baselined finding(s) suppressed" in lines
    assert lines[-1] == "1 finding(s)"
    assert format_github([]).splitlines()[-1] == "no findings"


# -- rule selection ---------------------------------------------------------


def test_rules_by_id_selects_and_rejects():
    assert [r.rule_id for r in rules_by_id("R5,r6")] == ["R5", "R6"]
    assert len(rules_by_id("R1,R2,R3,R4,R5,R6,R7,R8")) == len(ALL_RULES)
    with pytest.raises(ValueError):
        rules_by_id("R5,R99")


def test_cli_rules_filter(capsys, monkeypatch):
    monkeypatch.chdir(REPO)
    assert main(["lint", _fixture("seeded_r6"), "--rules", "R5"]) == 0
    capsys.readouterr()
    assert main(["lint", _fixture("seeded_r6"), "--rules", "R6,R7"]) == 1
    assert "R6" in capsys.readouterr().out


def test_cli_sarif_smoke(capsys, monkeypatch):
    monkeypatch.chdir(REPO)
    code = main(["lint", _fixture("seeded_r7"), "--format", "sarif"])
    doc = json.loads(capsys.readouterr().out)
    assert code == 1
    assert {r["ruleId"] for r in doc["runs"][0]["results"]} == {"R7"}


# -- --changed --------------------------------------------------------------


def _git(args, cwd):
    subprocess.run(
        ["git"] + list(args), cwd=cwd, check=True, capture_output=True
    )


def _init_repo(path):
    _git(["init", "-q"], path)
    _git(["config", "user.email", "lint@test.invalid"], path)
    _git(["config", "user.name", "lint-test"], path)


_BAD_PY = """\
def f():
    items = {"b", "a"}
    out = []
    for x in items:
        out.append(x)
    return out
"""


def test_changed_python_files_lists_edited_and_untracked(tmp_path):
    _init_repo(tmp_path)
    (tmp_path / "clean.py").write_text("X = 1\n", encoding="utf-8")
    (tmp_path / "notes.txt").write_text("not python\n", encoding="utf-8")
    _git(["add", "."], tmp_path)
    _git(["commit", "-q", "-m", "seed"], tmp_path)
    (tmp_path / "clean.py").write_text("X = 2\n", encoding="utf-8")
    (tmp_path / "fresh.py").write_text("Y = 3\n", encoding="utf-8")
    files = changed_python_files(base="HEAD", root=str(tmp_path))
    assert files == ["clean.py", "fresh.py"]


def test_changed_python_files_raises_outside_git(tmp_path):
    with pytest.raises(ChangedFilesError):
        changed_python_files(base="HEAD", root=str(tmp_path))


def test_cli_changed_lints_only_the_diff(tmp_path, capsys, monkeypatch):
    _init_repo(tmp_path)
    (tmp_path / "committed.py").write_text("X = 1\n", encoding="utf-8")
    _git(["add", "."], tmp_path)
    _git(["commit", "-q", "-m", "seed"], tmp_path)
    (tmp_path / "bad.py").write_text(_BAD_PY, encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    code = main(["lint", "--changed", "--base", "HEAD"])
    out = capsys.readouterr().out
    assert code == 1
    assert "bad.py" in out and "R3" in out
    assert "committed.py" not in out


def test_cli_changed_clean_diff_short_circuits(tmp_path, capsys, monkeypatch):
    _init_repo(tmp_path)
    (tmp_path / "committed.py").write_text("X = 1\n", encoding="utf-8")
    _git(["add", "."], tmp_path)
    _git(["commit", "-q", "-m", "seed"], tmp_path)
    monkeypatch.chdir(tmp_path)
    assert main(["lint", "--changed", "--base", "HEAD"]) == 0
    assert "no findings" in capsys.readouterr().out


def test_cli_changed_falls_back_outside_git(tmp_path, capsys, monkeypatch):
    clean = tmp_path / "ok.py"
    clean.write_text("X = 1\n", encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    code = main(["lint", str(clean), "--changed", "--base", "HEAD"])
    captured = capsys.readouterr()
    assert code == 0
    assert "falling back to a full lint" in captured.err
