"""Unit tests for the Brent/greedy scheduling simulation."""

import pytest

from repro.pram.cost import Cost
from repro.pram.schedule import (
    TaskLog,
    brent_time,
    greedy_schedule,
    simulate_loop,
    speedup_curve,
)


class TestBrent:
    def test_formula(self):
        assert brent_time(Cost(720, 10), 72) == pytest.approx(20)

    def test_monotone_in_p(self):
        c = Cost(10000, 3)
        ts = [brent_time(c, p) for p in (1, 2, 4, 8, 16, 72)]
        assert ts == sorted(ts, reverse=True)


class TestGreedySchedule:
    def test_single_processor_is_sum(self):
        tasks = [Cost(5, 1), Cost(3, 1), Cost(2, 1)]
        res = greedy_schedule(tasks, 1)
        assert res.makespan == 10
        assert res.utilization == pytest.approx(1.0)

    def test_perfect_split(self):
        tasks = [Cost(5, 1)] * 4
        res = greedy_schedule(tasks, 4)
        assert res.makespan == 5
        assert res.utilization == pytest.approx(1.0)

    def test_imbalanced_tasks_bound_makespan(self):
        tasks = [Cost(100, 1)] + [Cost(1, 1)] * 10
        res = greedy_schedule(tasks, 4)
        assert res.makespan == 100  # the giant task dominates

    def test_lpt_beats_naive_worst_case(self):
        # LPT places the two large tasks on different processors.
        tasks = [Cost(6, 1), Cost(6, 1), Cost(4, 1), Cost(4, 1)]
        res = greedy_schedule(tasks, 2)
        assert res.makespan == 10

    def test_empty_tasks(self):
        res = greedy_schedule([], 4)
        assert res.makespan == 0.0
        assert res.utilization == 1.0

    def test_invalid_processors(self):
        with pytest.raises(ValueError):
            greedy_schedule([Cost(1, 1)], 0)

    def test_more_processors_never_slower(self):
        tasks = [Cost(w, 1) for w in (9, 7, 6, 5, 4, 3, 2, 2, 1)]
        spans = [greedy_schedule(tasks, p).makespan for p in (1, 2, 3, 6, 12)]
        assert spans == sorted(spans, reverse=True)


class TestTaskLogAndLoop:
    def test_total_combines_par(self):
        log = TaskLog()
        log.add(Cost(10, 2))
        log.add(Cost(20, 5))
        assert log.total == Cost(30, 5)

    def test_serial_prefix_added(self):
        log = TaskLog(serial_prefix=Cost(100, 10))
        log.add(Cost(50, 1))
        assert log.total == Cost(150, 11)

    def test_simulate_loop(self):
        log = TaskLog(serial_prefix=Cost(72, 1))
        for _ in range(9):
            log.add(Cost(8, 1))
        t = simulate_loop(log, 72)
        # prefix: 72/72 + 1 = 2; loop: nine 8-unit tasks on 72 procs = 8.
        assert t == pytest.approx(10)


class TestSpeedupCurve:
    def test_speedup_values(self):
        curve = speedup_curve(Cost(7200, 100), [1, 72])
        t1, s1 = curve[1]
        t72, s72 = curve[72]
        assert s1 == pytest.approx(1.0)
        assert t72 == pytest.approx(200)
        assert s72 == pytest.approx(7300 / 200)

    def test_speedup_bounded_by_work_over_depth(self):
        c = Cost(1000, 100)
        curve = speedup_curve(c, [10**6])
        _, s = curve[10**6]
        assert s <= c.work / c.depth + 1
