"""Dedicated tests for Algorithm 3's internals (restricted subproblems)."""

import numpy as np
import pytest

from repro.baselines import brute_force_count, brute_force_list
from repro.core.community_variant import (
    count_cliques_community_order,
    restricted_candidate_subgraph,
)
from repro.graphs import complete_graph, from_edges, gnm_random_graph
from repro.orders import (
    approx_community_order,
    community_degeneracy_order,
    undirected_edge_ids,
)
from repro.pram.tracker import Tracker


class TestRestrictedSubgraph:
    def test_keeps_only_late_edges(self):
        g = complete_graph(5)
        us, vs, codes = undirected_edge_ids(g)
        # Rank edges by id; restrict to ranks >= 5.
        rank = np.arange(g.num_edges)
        members = np.array([1, 2, 3, 4], dtype=np.int32)
        sub = restricted_candidate_subgraph(g, members, rank, codes, 5)
        # Edges of K5 among {1,2,3,4} with id-rank >= 5: ids of (1,2).. etc.
        # edge ids in lexicographic order: (0,1)=0,(0,2)=1,(0,3)=2,(0,4)=3,
        # (1,2)=4,(1,3)=5,(1,4)=6,(2,3)=7,(2,4)=8,(3,4)=9.
        # rank >= 5 keeps (1,3),(1,4),(2,3),(2,4),(3,4) -> 5 edges.
        assert sub.num_edges == 5
        assert not sub.has_edge(0, 1)  # local (1,2) had rank 4: dropped

    def test_zero_threshold_keeps_all(self):
        g = gnm_random_graph(15, 50, seed=1)
        us, vs, codes = undirected_edge_ids(g)
        rank = np.arange(g.num_edges)
        members = np.arange(15, dtype=np.int32)
        sub = restricted_candidate_subgraph(g, members, rank, codes, 0)
        assert sub.num_edges == g.num_edges

    def test_empty_members(self):
        g = gnm_random_graph(10, 20, seed=2)
        _, _, codes = undirected_edge_ids(g)
        sub = restricted_candidate_subgraph(
            g, np.array([], dtype=np.int32), np.arange(20), codes, 0
        )
        assert sub.num_vertices == 0


class TestExactlyOnceSemantics:
    def test_the_double_count_regression(self):
        # Minimal instance of the bug the restricted subgraph fixes: a
        # K4 whose edge order makes two different edges "locally minimal".
        # Any order on K4's 6 edges must still count the clique once.
        g = complete_graph(4)
        for seed in range(12):
            rng = np.random.default_rng(seed)
            rank = rng.permutation(6)
            from repro.orders.community_order import EdgeOrderResult

            order = EdgeOrderResult(edge_rank=rank, sigma=2, num_rounds=1)
            res = count_cliques_community_order(g, 4, order, Tracker())
            assert res.count == 1, f"seed {seed} rank {rank}"

    @pytest.mark.parametrize("seed", range(6))
    def test_arbitrary_edge_orders_count_correctly(self, seed):
        # Algorithm 3 must be correct for ANY total edge order, not just
        # the community-degeneracy ones (the order affects only cost).
        g = gnm_random_graph(16, 60, seed=seed)
        rng = np.random.default_rng(seed + 99)
        from repro.orders.community_order import EdgeOrderResult

        order = EdgeOrderResult(
            edge_rank=rng.permutation(g.num_edges), sigma=0, num_rounds=1
        )
        for k in (4, 5):
            res = count_cliques_community_order(g, k, order, Tracker())
            assert res.count == brute_force_count(g, k), k

    def test_listing_with_both_inner_orders(self):
        g = gnm_random_graph(18, 80, seed=7)
        order = community_degeneracy_order(g)
        expected = sorted(brute_force_list(g, 4))
        for inner in ("id", "degeneracy"):
            res = count_cliques_community_order(
                g, 4, order, Tracker(), collect=True, inner_order=inner
            )
            assert sorted(res.cliques) == expected, inner

    def test_approx_order_same_count(self):
        g = gnm_random_graph(20, 95, seed=8)
        exact = community_degeneracy_order(g)
        approx = approx_community_order(g, eps=0.5)
        a = count_cliques_community_order(g, 5, exact, Tracker()).count
        b = count_cliques_community_order(g, 5, approx, Tracker()).count
        assert a == b == brute_force_count(g, 5)


class TestCostShape:
    def test_gamma_reported_from_candidate_sets(self):
        g = gnm_random_graph(25, 120, seed=9)
        order = community_degeneracy_order(g)
        res = count_cliques_community_order(g, 4, order, Tracker())
        assert res.gamma <= order.sigma

    def test_phases_include_communities_and_search(self):
        g = gnm_random_graph(25, 120, seed=9)
        order = community_degeneracy_order(g)
        tr = Tracker()
        count_cliques_community_order(g, 4, order, tr)
        assert {"communities", "search"} <= set(tr.phases)
