"""CREW sanitizer: conflict detection, shadow arrays, executor wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parallel import count_cliques_parallel
from repro.graphs.generators import clique_chain
from repro.pram.executor import parallel_map_reduce
from repro.pram.sanitize import CREWViolation, ShadowArray, _normalize_indices
from repro.pram.tracker import Tracker


# -- direct conflicts ------------------------------------------------------


def test_write_write_conflict_raises():
    t = Tracker(sanitize=True)
    shared = t.watch([0, 0, 0], name="shared")
    with pytest.raises(CREWViolation) as exc:
        with t.parallel() as region:
            with region.task():
                shared[1] = 10
            with region.task():
                shared[1] = 20
    assert exc.value.kind == "write/write"
    assert exc.value.array_name == "shared"
    assert exc.value.index == 1


def test_disjoint_writes_pass():
    t = Tracker(sanitize=True)
    shared = t.watch([0] * 4, name="shared")
    with t.parallel() as region:
        for i in range(4):
            with region.task():
                shared[i] = i
    assert shared.base == [0, 1, 2, 3]


def test_read_write_race_write_after_read():
    t = Tracker(sanitize=True)
    shared = t.watch([5, 6], name="s")
    with pytest.raises(CREWViolation) as exc:
        with t.parallel() as region:
            with region.task():
                _ = shared[0]
            with region.task():
                shared[0] = 9
    assert exc.value.kind == "read/write"


def test_read_write_race_read_after_write():
    t = Tracker(sanitize=True)
    shared = t.watch([5, 6], name="s")
    with pytest.raises(CREWViolation) as exc:
        with t.parallel() as region:
            with region.task():
                shared[0] = 9
            with region.task():
                _ = shared[0]
    assert exc.value.kind == "read/write"


def test_concurrent_reads_are_fine():
    t = Tracker(sanitize=True)
    shared = t.watch([1, 2, 3])
    got = []
    with t.parallel() as region:
        for _ in range(3):
            with region.task():
                got.append(shared[0])
    assert got == [1, 1, 1]


def test_same_task_may_read_and_write_its_cell():
    t = Tracker(sanitize=True)
    shared = t.watch([0, 0])
    with t.parallel() as region:
        with region.task():
            shared[0] = shared[0] + 1
            shared[0] = shared[0] + 1
    assert shared.base == [2, 0]


def test_sequential_access_outside_tasks_is_unchecked():
    t = Tracker(sanitize=True)
    shared = t.watch([0])
    shared[0] = 1  # no open task: sequential code cannot race
    shared[0] = 2
    with t.parallel() as region:
        with region.task():
            shared[0] = 3
    assert shared.base == [3]


def test_explicit_record_api_and_numpy_indices():
    t = Tracker(sanitize=True)
    arr = np.zeros(8)
    with pytest.raises(CREWViolation):
        with t.parallel() as region:
            with region.task():
                t.record_write(arr, np.array([0, 1, 2]))
            with region.task():
                t.record_write(arr, slice(2, 5))  # overlaps cell 2


def test_bool_mask_and_tuple_indices():
    assert _normalize_indices(np.array([True, False, True])) == [0, 2]
    assert _normalize_indices((1, 2)) == [(1, 2)]
    assert _normalize_indices(3) == [3]
    with pytest.raises(TypeError):
        _normalize_indices(slice(0, 2))  # slice needs a length
    with pytest.raises(TypeError):
        _normalize_indices(True)


def test_nested_region_folds_into_outer_task():
    t = Tracker(sanitize=True)
    shared = t.watch([0, 0], name="deep")
    with pytest.raises(CREWViolation):
        with t.parallel() as outer:
            with outer.task():
                with t.parallel() as inner:
                    with inner.task():
                        shared[0] = 1
            with outer.task():
                with t.parallel() as inner:
                    with inner.task():
                        shared[0] = 2


# -- shadow array mechanics ------------------------------------------------


def test_watch_is_identity_when_not_sanitizing():
    t = Tracker()
    arr = [1, 2, 3]
    assert t.watch(arr) is arr
    null = Tracker(enabled=False, sanitize=True)  # disabled wins
    assert null.watch(arr) is arr


def test_shadow_array_delegates():
    t = Tracker(sanitize=True)
    arr = np.arange(4)
    shadow = t.watch(arr, name="a")
    assert isinstance(shadow, ShadowArray)
    assert shadow.base is arr
    assert len(shadow) == 4
    assert list(iter(shadow)) == [0, 1, 2, 3]
    assert shadow.sum() == 6  # __getattr__ delegation
    assert "ShadowArray" in repr(shadow)


def test_double_watch_shares_identity():
    t = Tracker(sanitize=True)
    arr = [0, 0]
    s1 = t.watch(arr)
    s2 = t.watch(s1)  # re-watching a shadow must not nest
    assert s2.base is arr
    with pytest.raises(CREWViolation):
        with t.parallel() as region:
            with region.task():
                s1[0] = 1
            with region.task():
                s2[0] = 2


def test_reset_recreates_sanitizer_and_rejects_open_tasks():
    t = Tracker(sanitize=True)
    shared = t.watch([0])
    with pytest.raises(RuntimeError):
        with t.parallel() as region:
            with region.task():
                t.reset()
    t2 = Tracker(sanitize=True)
    t2.charge_ops(5)
    t2.reset()
    assert t2.work == 0
    assert t2._sanitizer is not None


# -- executor integration --------------------------------------------------


def _writer_conflict(chunk, shared):
    shared[0] = int(chunk[0])  # every chunk writes cell 0
    return 0


def _writer_disjoint(chunk, shared):
    for i in chunk.tolist():
        shared[int(i)] = 1
    return int(chunk.size)


def test_executor_sanitize_catches_shared_write():
    t = Tracker(sanitize=True)
    shared = t.watch([0] * 16, name="accum")
    with pytest.raises(CREWViolation):
        parallel_map_reduce(
            _writer_conflict, 16, args=(shared,), n_workers=4, tracker=t
        )


def test_executor_sanitize_passes_disjoint_writes():
    t = Tracker(sanitize=True)
    shared = t.watch([0] * 16, name="cells")
    total = parallel_map_reduce(
        _writer_disjoint, 16, args=(shared,), n_workers=4, initial=0, tracker=t
    )
    assert total == 16
    assert shared.base == [1] * 16


def test_count_cliques_parallel_is_crew_clean():
    g = clique_chain(3, 6)
    expected = count_cliques_parallel(g, 4, n_workers=1)
    got = count_cliques_parallel(g, 4, n_workers=4, tracker=Tracker(sanitize=True))
    assert got == expected
