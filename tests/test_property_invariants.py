"""Property-based tests on the substrates' structural invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs import CSRGraph, from_edges, orient_by_order
from repro.orders import (
    approx_degeneracy_order,
    community_degeneracy_order,
    degeneracy_order,
)
from repro.pram.cost import Cost
from repro.triangles import build_communities

SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def edge_lists(draw, max_n=20):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=min(60, n * (n - 1) // 2)))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=m,
            max_size=m,
        )
    )
    return n, pairs


@given(data=edge_lists())
@settings(**SETTINGS)
def test_builder_always_produces_valid_csr(data):
    n, pairs = data
    g = from_edges(np.asarray(pairs, dtype=np.int64).reshape(-1, 2), num_vertices=n)
    CSRGraph(g.indptr, g.indices, validate=True)  # strict re-validation
    assert int(g.degrees.sum()) == 2 * g.num_edges


@given(data=edge_lists(), seed=st.integers(min_value=0, max_value=999))
@settings(**SETTINGS)
def test_orientation_is_acyclic_partition(data, seed):
    n, pairs = data
    g = from_edges(np.asarray(pairs, dtype=np.int64).reshape(-1, 2), num_vertices=n)
    order = np.random.default_rng(seed).permutation(n)
    dag = orient_by_order(g, order)
    # each undirected edge appears exactly once, directed upward
    assert dag.num_edges == g.num_edges
    for v in range(n):
        out = dag.out_neighbors(v)
        assert np.all(out > v)
        assert np.all(np.diff(out) > 0)


@given(data=edge_lists())
@settings(**SETTINGS)
def test_degeneracy_order_certificate(data):
    n, pairs = data
    g = from_edges(np.asarray(pairs, dtype=np.int64).reshape(-1, 2), num_vertices=n)
    res = degeneracy_order(g)
    dag = orient_by_order(g, res.order)
    # The defining property: orienting by the order gives out-degree <= s.
    assert dag.max_out_degree <= res.degeneracy
    # And s is tight: some suffix vertex attains it.
    if g.num_edges:
        assert res.degeneracy >= 1


@given(data=edge_lists(), eps=st.floats(min_value=0.05, max_value=2.0))
@settings(**SETTINGS)
def test_approx_degeneracy_guarantee(data, eps):
    n, pairs = data
    g = from_edges(np.asarray(pairs, dtype=np.int64).reshape(-1, 2), num_vertices=n)
    s = degeneracy_order(g).degeneracy
    res = approx_degeneracy_order(g, eps=eps)
    dag = orient_by_order(g, res.order)
    assert dag.max_out_degree <= 2 * (1 + eps) * max(s, 0) + 1e-9


@given(data=edge_lists())
@settings(**SETTINGS)
def test_sigma_strictly_less_than_s_when_edges_exist(data):
    n, pairs = data
    g = from_edges(np.asarray(pairs, dtype=np.int64).reshape(-1, 2), num_vertices=n)
    if g.num_edges == 0:
        return
    sigma = community_degeneracy_order(g).sigma
    s = degeneracy_order(g).degeneracy
    assert sigma < s  # paper §1.1: strict inequality


@given(data=edge_lists())
@settings(**SETTINGS)
def test_communities_partition_triangles(data):
    n, pairs = data
    g = from_edges(np.asarray(pairs, dtype=np.int64).reshape(-1, 2), num_vertices=n)
    dag = orient_by_order(g, np.arange(n))
    comms = build_communities(dag)
    # gamma <= max out-degree - 1 whenever communities are non-empty
    if comms.num_triangles:
        assert comms.max_size <= dag.max_out_degree - 1
    # every member lies strictly between its edge's endpoints
    us, vs = dag.edge_endpoints()
    for eid in range(dag.num_edges):
        c = comms.of(eid)
        if c.size:
            assert c.min() > us[eid] and c.max() < vs[eid]


@given(
    w1=st.floats(min_value=0, max_value=1e6),
    d1=st.floats(min_value=0, max_value=1e6),
    w2=st.floats(min_value=0, max_value=1e6),
    d2=st.floats(min_value=0, max_value=1e6),
    p=st.integers(min_value=1, max_value=4096),
)
@settings(max_examples=60, deadline=None)
def test_cost_algebra_laws(w1, d1, w2, d2, p):
    a, b = Cost(w1, min(d1, w1)), Cost(w2, min(d2, w2))
    # commutativity of |, monotonicity of Brent time, distributive bound
    assert (a | b) == (b | a)
    assert (a + b).time_on(p) >= (a | b).time_on(p)
    assert (a + b).work == (a | b).work
    # Brent never beats perfect speedup or the critical path
    t = a.time_on(p)
    assert t >= a.work / p
    assert t >= a.depth
