"""Unit tests for the process-based parallel executor."""

import numpy as np
import pytest

from repro.pram.executor import available_workers, chunk_indices, parallel_map_reduce


def _square_sum(block):
    return int((np.asarray(block) ** 2).sum())


def _square_sum_with_arg(block, offset):
    return int(((np.asarray(block) + offset) ** 2).sum())


class TestChunking:
    def test_chunks_cover_range(self):
        blocks = chunk_indices(100, 7)
        joined = np.concatenate(blocks)
        assert np.array_equal(np.sort(joined), np.arange(100))

    def test_empty_range(self):
        assert chunk_indices(0, 4) == []

    def test_more_chunks_than_items(self):
        blocks = chunk_indices(3, 10)
        assert len(blocks) == 3

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            chunk_indices(-1, 2)
        with pytest.raises(ValueError):
            chunk_indices(5, 0)


class TestWorkers:
    def test_one_worker_allowed(self):
        assert available_workers(1) == 1

    def test_requested_clamped_to_cpus(self):
        import os

        assert available_workers(10**6) <= (os.cpu_count() or 1)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            available_workers(0)


class TestMapReduce:
    def test_sequential_path(self):
        got = parallel_map_reduce(_square_sum, 100, n_workers=1)
        assert got == sum(i * i for i in range(100))

    def test_empty_range_returns_none(self):
        assert parallel_map_reduce(_square_sum, 0, n_workers=1) is None

    def test_extra_args_forwarded(self):
        got = parallel_map_reduce(
            _square_sum_with_arg, 10, args=(5,), n_workers=1
        )
        assert got == sum((i + 5) ** 2 for i in range(10))

    def test_custom_combine(self):
        got = parallel_map_reduce(
            lambda block: int(np.max(block)),
            50,
            combine=max,
            n_workers=1,
        )
        assert got == 49

    def test_multiprocess_path_matches_sequential(self):
        seq = parallel_map_reduce(_square_sum, 200, n_workers=1)
        par = parallel_map_reduce(_square_sum, 200, n_workers=2)
        assert seq == par
