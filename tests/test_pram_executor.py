"""Unit tests for the process-based parallel executor."""

import numpy as np
import pytest

from repro.pram.executor import (
    available_workers,
    chunk_indices,
    parallel_map_reduce,
    worker_state,
)


def _square_sum(block):
    return int((np.asarray(block) ** 2).sum())


def _square_sum_with_arg(block, offset):
    return int(((np.asarray(block) + offset) ** 2).sum())


def _state_reader(block):
    scale = worker_state()
    return int(np.asarray(block).sum()) * scale


def _nested_dispatch(block):
    outer = worker_state()
    # Re-entrant call with its own state must not clobber the outer one.
    inner = parallel_map_reduce(_state_reader, 4, n_workers=1, state=10, initial=0)
    assert worker_state() == outer
    return inner + outer * int(np.asarray(block).size)


class TestChunking:
    def test_chunks_cover_range(self):
        blocks = chunk_indices(100, 7)
        joined = np.concatenate(blocks)
        assert np.array_equal(np.sort(joined), np.arange(100))

    def test_empty_range(self):
        assert chunk_indices(0, 4) == []

    def test_more_chunks_than_items(self):
        blocks = chunk_indices(3, 10)
        assert len(blocks) == 3

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            chunk_indices(-1, 2)
        with pytest.raises(ValueError):
            chunk_indices(5, 0)


class TestWeightedChunking:
    def test_weighted_blocks_cover_range_in_order(self):
        w = np.arange(1, 51, dtype=float)
        blocks = chunk_indices(50, 6, weights=w)
        assert np.array_equal(np.concatenate(blocks), np.arange(50))

    def test_heavy_head_is_isolated(self):
        # One index carrying most of the weight should not drag half the
        # range into its chunk the way a cardinality split would.
        w = np.array([100.0] + [1.0] * 9)
        blocks = chunk_indices(10, 2, weights=w)
        assert blocks[0].tolist() == [0]
        assert blocks[1].tolist() == list(range(1, 10))

    def test_uniform_weights_stay_balanced(self):
        # Equal weights must produce an (almost) even split — the same
        # balance guarantee as the cardinality path, though cut points
        # may differ by one index.
        blocks = chunk_indices(100, 7, weights=np.ones(100))
        sizes = [b.size for b in blocks]
        assert len(blocks) == 7
        assert max(sizes) - min(sizes) <= 1
        assert np.array_equal(np.concatenate(blocks), np.arange(100))

    def test_zero_total_weight_falls_back(self):
        blocks = chunk_indices(12, 3, weights=np.zeros(12))
        assert np.array_equal(np.concatenate(blocks), np.arange(12))
        assert len(blocks) == 3

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            chunk_indices(5, 2, weights=np.ones(4))
        with pytest.raises(ValueError):
            chunk_indices(5, 2, weights=np.array([1.0, -1.0, 1.0, 1.0, 1.0]))

    def test_map_reduce_result_invariant_under_weights(self):
        plain = parallel_map_reduce(_square_sum, 200, n_workers=1)
        skewed = parallel_map_reduce(
            _square_sum,
            200,
            n_workers=1,
            weights=np.linspace(100, 1, 200),
        )
        assert plain == skewed


class TestWorkers:
    def test_one_worker_allowed(self):
        assert available_workers(1) == 1

    def test_requested_clamped_to_cpus(self):
        import os

        assert available_workers(10**6) <= (os.cpu_count() or 1)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            available_workers(0)


class TestMapReduce:
    def test_sequential_path(self):
        got = parallel_map_reduce(_square_sum, 100, n_workers=1)
        assert got == sum(i * i for i in range(100))

    def test_empty_range_returns_none(self):
        assert parallel_map_reduce(_square_sum, 0, n_workers=1) is None

    def test_extra_args_forwarded(self):
        got = parallel_map_reduce(
            _square_sum_with_arg, 10, args=(5,), n_workers=1
        )
        assert got == sum((i + 5) ** 2 for i in range(10))

    def test_custom_combine(self):
        got = parallel_map_reduce(
            lambda block: int(np.max(block)),
            50,
            combine=max,
            n_workers=1,
        )
        assert got == 49

    def test_multiprocess_path_matches_sequential(self):
        seq = parallel_map_reduce(_square_sum, 200, n_workers=1)
        par = parallel_map_reduce(_square_sum, 200, n_workers=2)
        assert seq == par

    def test_empty_range_returns_initial(self):
        # The documented contract: pass the monoid identity explicitly
        # instead of relying on the falsiness of None.
        assert parallel_map_reduce(_square_sum, 0, n_workers=1, initial=0) == 0
        assert parallel_map_reduce(_square_sum, 0, n_workers=2, initial=7) == 7

    def test_initial_is_leftmost_operand(self):
        got = parallel_map_reduce(
            lambda block: int(np.asarray(block).sum()),
            10,
            n_workers=1,
            initial=1000,
        )
        assert got == 1000 + sum(range(10))


class TestWorkerState:
    def test_worker_state_outside_dispatch_raises(self):
        with pytest.raises(RuntimeError):
            worker_state()

    def test_state_delivered_and_popped_sequential(self):
        got = parallel_map_reduce(
            _state_reader, 5, n_workers=1, state=3, initial=0
        )
        assert got == 3 * sum(range(5))
        with pytest.raises(RuntimeError):
            worker_state()  # the dispatch popped its state

    def test_state_popped_when_worker_raises(self):
        def boom(block):
            raise ValueError("boom")

        with pytest.raises(ValueError):
            parallel_map_reduce(boom, 5, n_workers=1, state="s")
        with pytest.raises(RuntimeError):
            worker_state()

    def test_nested_dispatch_restores_outer_state(self):
        # Regression for the module-global _SHARED slot this stack replaced:
        # a nested parallel_map_reduce used to clobber the outer state.
        got = parallel_map_reduce(
            _nested_dispatch, 6, n_workers=1, state=2, initial=0
        )
        blocks = chunk_indices(6, 4)
        inner = 10 * sum(range(4))
        assert got == sum(inner + 2 * b.size for b in blocks)

    def test_state_delivered_to_forked_workers(self):
        got = parallel_map_reduce(
            _state_reader, 40, n_workers=2, state=5, initial=0
        )
        assert got == 5 * sum(range(40))
