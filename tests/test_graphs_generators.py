"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graphs import (
    CSRGraph,
    banded_graph,
    bipartite_plus_line_graph,
    chung_lu_graph,
    clique_chain,
    collaboration_graph,
    core_periphery_graph,
    gnm_random_graph,
    hypercube_graph,
    kneser_graph,
    mesh_graph_3d,
    plant_cliques,
    powerlaw_cluster_graph,
    random_geometric_graph,
    relaxed_caveman_graph,
    rmat_graph,
    turan_graph,
)


def assert_valid(g: CSRGraph):
    CSRGraph(g.indptr, g.indices, validate=True)


class TestGnm:
    def test_exact_edge_count(self):
        g = gnm_random_graph(100, 500, seed=1)
        assert g.num_edges == 500
        assert_valid(g)

    def test_deterministic_under_seed(self):
        a = gnm_random_graph(50, 100, seed=42)
        b = gnm_random_graph(50, 100, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = gnm_random_graph(50, 100, seed=1)
        b = gnm_random_graph(50, 100, seed=2)
        assert a != b

    def test_zero_edges(self):
        g = gnm_random_graph(10, 0, seed=0)
        assert g.num_edges == 0

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            gnm_random_graph(4, 7, seed=0)

    def test_complete_density(self):
        g = gnm_random_graph(6, 15, seed=0)
        assert g.num_edges == 15


class TestPowerlawCluster:
    def test_size_and_validity(self):
        g = powerlaw_cluster_graph(200, 4, 0.5, seed=2)
        assert g.num_vertices == 200
        assert_valid(g)

    def test_triad_closure_raises_triangles(self):
        from repro.graphs import orient_by_order
        from repro.triangles import count_triangles

        lo = powerlaw_cluster_graph(300, 4, 0.0, seed=3)
        hi = powerlaw_cluster_graph(300, 4, 0.9, seed=3)
        t_lo = count_triangles(orient_by_order(lo, np.arange(300)))
        t_hi = count_triangles(orient_by_order(hi, np.arange(300)))
        assert t_hi > t_lo

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            powerlaw_cluster_graph(3, 5, 0.5)
        with pytest.raises(ValueError):
            powerlaw_cluster_graph(10, 2, 1.5)


class TestStructuredFamilies:
    def test_hypercube_regular(self):
        g = hypercube_graph(4)
        assert g.num_vertices == 16
        assert np.all(g.degrees == 4)
        assert g.num_edges == 32

    def test_hypercube_triangle_free(self):
        from repro.graphs import orient_by_order
        from repro.triangles import count_triangles

        g = hypercube_graph(5)
        assert count_triangles(orient_by_order(g, np.arange(32))) == 0

    def test_bipartite_plus_line(self):
        g = bipartite_plus_line_graph(6)
        assert g.num_vertices == 12
        # K_{6,6} has 36 edges + 5 path edges
        assert g.num_edges == 41

    def test_banded_structure(self):
        g = banded_graph(20, 3)
        assert g.has_edge(0, 3)
        assert not g.has_edge(0, 4)
        assert g.num_edges == 3 * 20 - (1 + 2 + 3)

    def test_banded_window_is_clique(self):
        from repro.baselines import brute_force_count

        g = banded_graph(10, 4)
        # vertices 0..4 pairwise within distance 4 -> 5-clique
        assert brute_force_count(g, 5) == 6

    def test_mesh_sizes(self):
        g = mesh_graph_3d(3, 3, 3)
        assert g.num_vertices == 27
        assert_valid(g)

    def test_mesh_no_diagonals_triangle_free(self):
        from repro.graphs import orient_by_order
        from repro.triangles import count_triangles

        g = mesh_graph_3d(4, 4, 2, diagonals=False)
        assert count_triangles(orient_by_order(g, np.arange(32))) == 0

    def test_clique_chain_counts(self):
        from repro.baselines import brute_force_count

        g = clique_chain(3, 5, overlap=1)
        # Each 5-clique contributes C(5,4)=5 4-cliques; overlap of 1 vertex
        # cannot create extra 4-cliques.
        assert brute_force_count(g, 5) == 3
        assert brute_force_count(g, 4) == 15

    def test_turan_free_of_big_clique(self):
        from repro.baselines import brute_force_count

        g = turan_graph(12, 3)
        assert brute_force_count(g, 3) > 0
        assert brute_force_count(g, 4) == 0


class TestPlanted:
    def test_planted_cliques_exist(self):
        from repro.baselines import brute_force_count

        base = gnm_random_graph(40, 60, seed=4)
        g, planted = plant_cliques(base, [5, 6], seed=5)
        assert len(planted) == 2
        assert brute_force_count(g, 5) >= 1 + 6  # the 5-clique + C(6,5)
        for members in planted:
            for i in members.tolist():
                for j in members.tolist():
                    if i != j:
                        assert g.has_edge(i, j)

    def test_disjoint_overflow_rejected(self):
        base = gnm_random_graph(8, 5, seed=1)
        with pytest.raises(ValueError):
            plant_cliques(base, [5, 5], seed=0)

    def test_size_one_rejected(self):
        base = gnm_random_graph(10, 5, seed=1)
        with pytest.raises(ValueError):
            plant_cliques(base, [1], seed=0)


class TestRandomFamilies:
    def test_rmat(self):
        g = rmat_graph(7, 8, seed=6)
        assert g.num_vertices == 128
        assert_valid(g)

    def test_rmat_invalid_probs(self):
        with pytest.raises(ValueError):
            rmat_graph(4, 4, a=0.9, b=0.9, c=0.9)

    def test_geometric_radius_monotone(self):
        small = random_geometric_graph(200, 0.05, seed=7)
        big = random_geometric_graph(200, 0.15, seed=7)
        assert big.num_edges > small.num_edges

    def test_geometric_edges_within_radius(self):
        # Regenerate points to verify distances (same seed path).
        g = random_geometric_graph(100, 0.2, seed=8)
        rng = np.random.default_rng(8)
        pts = rng.random((100, 2))
        us, vs = g.edge_array()
        d2 = ((pts[us] - pts[vs]) ** 2).sum(axis=1)
        assert np.all(d2 <= 0.2**2 + 1e-12)

    def test_chung_lu_respects_weights(self):
        w = np.concatenate([np.full(20, 30.0), np.full(180, 1.0)])
        g = chung_lu_graph(w, seed=9)
        heavy = g.degrees[:20].mean()
        light = g.degrees[20:].mean()
        assert heavy > 3 * light

    def test_chung_lu_zero_weights(self):
        g = chung_lu_graph(np.zeros(10), seed=0)
        assert g.num_edges == 0

    def test_caveman(self):
        g = relaxed_caveman_graph(5, 6, 0.1, seed=10)
        assert g.num_vertices == 30
        assert_valid(g)

    def test_collaboration(self):
        g = collaboration_graph(200, 80, seed=11)
        assert g.num_vertices == 200
        assert_valid(g)

    def test_core_periphery_core_denser(self):
        g = core_periphery_graph(30, 300, p_core=0.5, attach=2, seed=12)
        core_deg = g.degrees[:30].mean()
        peri_deg = g.degrees[30:].mean()
        assert core_deg > peri_deg

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            relaxed_caveman_graph(0, 5, 0.1)
        with pytest.raises(ValueError):
            core_periphery_graph(0, 10)
        with pytest.raises(ValueError):
            banded_graph(-1, 2)
        with pytest.raises(ValueError):
            collaboration_graph(1, 5)


class TestKneser:
    def test_petersen_is_k52(self):
        g = kneser_graph(5, 2)
        assert g.num_vertices == 10
        assert g.num_edges == 15
        assert_valid(g)

    def test_clique_number_is_floor_n_over_s(self):
        from repro.core import max_clique_size

        assert max_clique_size(kneser_graph(6, 2)) == 3
        assert max_clique_size(kneser_graph(7, 3)) == 2  # triangle-free

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            kneser_graph(3, 0)
        with pytest.raises(ValueError):
            kneser_graph(2, 3)


class TestSeededReplay:
    """Same seed ⇒ byte-identical CSR arrays (the fuzz replay contract).

    Every randomized generator must derive its stream from
    ``np.random.default_rng(seed)`` alone — never module-level global
    state — so a recorded fuzz case rebuilds its graph exactly.
    """

    CASES = [
        (gnm_random_graph, dict(n=40, m=150)),
        (powerlaw_cluster_graph, dict(n=40, m_per_vertex=3, p_triad=0.4)),
        (rmat_graph, dict(scale=5, edge_factor=4)),
        (random_geometric_graph, dict(n=60, radius=0.2)),
        (relaxed_caveman_graph, dict(n_cliques=4, clique_size=5, p_rewire=0.2)),
        (collaboration_graph, dict(n=50, n_groups=20)),
        (core_periphery_graph, dict(n_core=10, n_periphery=40)),
    ]

    @pytest.mark.parametrize("fn,kwargs", CASES, ids=lambda c: getattr(c, "__name__", None))
    def test_replay_is_byte_identical(self, fn, kwargs):
        a = fn(seed=1234, **kwargs)
        b = fn(seed=1234, **kwargs)
        np.testing.assert_array_equal(a.indptr, b.indptr)
        np.testing.assert_array_equal(a.indices, b.indices)
        c = fn(seed=1235, **kwargs)
        different = (
            c.num_edges != a.num_edges
            or not np.array_equal(c.indices, a.indices)
        )
        assert different, "a different seed should perturb the graph"

    def test_generator_passthrough_continues_the_stream(self):
        # Passing a Generator instead of an int must consume from that
        # stream (hierarchical seeding), so two consecutive calls differ
        # but the whole sequence replays from the parent seed.
        rng = np.random.default_rng(7)
        a1 = gnm_random_graph(30, 90, seed=rng)
        a2 = gnm_random_graph(30, 90, seed=rng)
        rng2 = np.random.default_rng(7)
        b1 = gnm_random_graph(30, 90, seed=rng2)
        b2 = gnm_random_graph(30, 90, seed=rng2)
        np.testing.assert_array_equal(a1.indices, b1.indices)
        np.testing.assert_array_equal(a2.indices, b2.indices)
        assert not np.array_equal(a1.indices, a2.indices)

    def test_chung_lu_replay(self):
        w = np.linspace(1.0, 8.0, 40)
        a = chung_lu_graph(w, seed=5)
        b = chung_lu_graph(w, seed=5)
        np.testing.assert_array_equal(a.indptr, b.indptr)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_plant_cliques_replay(self):
        base = gnm_random_graph(30, 60, seed=2)
        a, planted_a = plant_cliques(base, [5, 4], seed=9)
        b, planted_b = plant_cliques(base, [5, 4], seed=9)
        np.testing.assert_array_equal(a.indices, b.indices)
        for pa, pb in zip(planted_a, planted_b):
            np.testing.assert_array_equal(pa, pb)
