"""The project symbol table and conservative call graph on fixtures.

The fixture package (``tests/lint_fixtures/pkg``) is shaped to exercise
exactly the resolution features the interprocedural rules lean on:
diamond imports converging on one leaf, a two-module call cycle, both
alias forms (``import x as y`` and ``from .m import f as g``), a
dispatcher call marking a worker entry point, and a callback edge.
"""

from __future__ import annotations

import os

from repro.lint.callgraph import Project
from repro.lint.core import collect_python_files, parse_module

HERE = os.path.dirname(os.path.abspath(__file__))
PKG = os.path.join(HERE, "lint_fixtures", "pkg")
P = "tests.lint_fixtures.pkg"


def _project() -> Project:
    mods = [parse_module(p) for p in collect_python_files([PKG])]
    return Project(mods)


def test_module_names_follow_package_structure():
    proj = _project()
    assert {f"{P}.leaf", f"{P}.left", f"{P}.right", f"{P}.work"} <= set(
        proj.infos
    )
    assert f"{P}.leaf.tally" in proj.functions
    assert proj.functions[f"{P}.leaf.tally"].display == "tally"


def test_diamond_edges_resolve_through_both_alias_forms():
    proj = _project()
    assert proj.callees(f"{P}.work._worker") == [
        f"{P}.left.go_left",
        f"{P}.right.go_right",
    ]
    # Plain relative import.
    assert proj.callees(f"{P}.left.go_left") == [f"{P}.leaf.tally"]
    # ``from . import leaf as lf`` + ``from .leaf import tally as count_up``.
    assert proj.callees(f"{P}.right.go_right") == [
        f"{P}.leaf.pure_leaf",
        f"{P}.leaf.tally",
    ]


def test_cycle_resolves_and_reachability_terminates():
    proj = _project()
    ping, pong = f"{P}.cyc_a.ping", f"{P}.cyc_b.pong"
    # ``import tests.lint_fixtures.pkg.cyc_b as cb`` resolves ``cb.pong``.
    assert proj.callees(ping) == [pong]
    assert proj.callees(pong) == [ping]
    assert proj.reachable(ping) == {pong: (ping, pong)}
    assert proj.reachable(pong) == {ping: (pong, ping)}


def test_worker_entry_points_found_via_dispatcher():
    proj = _project()
    assert proj.worker_entry_points() == [f"{P}.work._worker"]


def test_callback_edge_from_dispatch_site():
    proj = _project()
    # ``run`` passes ``_worker`` by name: the graph assumes it is called.
    assert f"{P}.work._worker" in proj.callees(f"{P}.work.run")


def test_reachability_matches_bfs_oracle_with_shortest_chains():
    proj = _project()
    entry = f"{P}.work._worker"

    # Independent BFS oracle over the same callee adjacency.
    dist = {entry: 0}
    frontier = [entry]
    while frontier:
        nxt = []
        for fq in frontier:
            for callee in proj.callees(fq):
                if callee not in dist:
                    dist[callee] = dist[fq] + 1
                    nxt.append(callee)
        frontier = nxt
    expected = {fq for fq in dist if fq != entry}

    reached = proj.reachable(entry)
    assert set(reached) == expected
    assert f"{P}.leaf.tally" in reached and f"{P}.leaf.pure_leaf" in reached
    assert f"{P}.leaf.reset_registry" not in reached
    for fq, chain in reached.items():
        assert chain[0] == entry and chain[-1] == fq
        assert len(chain) == dist[fq] + 1  # one *shortest* witness chain
        for a, b in zip(chain, chain[1:]):
            assert b in proj.callees(a)  # every hop is a real edge


def test_max_depth_bounds_the_walk():
    proj = _project()
    entry = f"{P}.work._worker"
    shallow = proj.reachable(entry, max_depth=1)
    assert set(shallow) == {f"{P}.left.go_left", f"{P}.right.go_right"}
