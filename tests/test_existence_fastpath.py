"""The has_clique fast path and the single-sort listing contract.

Regression tests for two seed bugs: ``has_clique`` used to run a full
count and throw the count away, and ``list_cliques`` used to re-sort a
listing the engines already canonicalize.
"""

import numpy as np
import pytest

from repro import VARIANTS, count_cliques, has_clique, list_cliques
from repro.core.existence import find_clique
from repro.core.variants import run_variant
from repro.graphs import complete_graph, gnm_random_graph
from repro.graphs.generators import plant_cliques
from repro.pram.tracker import Tracker


class TestHasCliqueAgreement:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_count_on_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        g = gnm_random_graph(int(rng.integers(10, 30)), int(rng.integers(20, 90)), seed=seed)
        if seed % 2:
            g, _ = plant_cliques(g, [6], seed=seed)
        for k in (3, 4, 5, 6, 7):
            expected = count_cliques(g, k).count > 0
            assert has_clique(g, k) == expected, (seed, k)
            assert (find_clique(g, k) is not None) == expected, (seed, k)

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_variant_argument_still_accepted(self, variant):
        g, _ = plant_cliques(gnm_random_graph(25, 80, seed=3), [6], seed=3)
        for k in (4, 7):
            expected = count_cliques(g, k, variant=variant).count > 0
            assert has_clique(g, k, variant=variant) == expected

    def test_trivial_sizes(self):
        g = complete_graph(4)
        assert has_clique(g, 1) and has_clique(g, 2) and has_clique(g, 4)
        assert not has_clique(g, 5)


class TestHasCliqueIsAFastPath:
    def test_less_tracked_work_than_counting_on_planted_clique(self):
        # The acceptance criterion: on an instance with many k-cliques the
        # early-exit search must do measurably less tracked work than the
        # full count (the seed bug made them identical). Both queries run
        # on one shared prepared context so the comparison is warm-warm —
        # each tracker charges only its own search, not who-built-the-
        # preprocessing-first (the façade's default cache would otherwise
        # bill it all to whichever query came first).
        from repro import prepare

        g = gnm_random_graph(150, 700, seed=11)
        g, _ = plant_cliques(g, [12, 12], seed=11)
        k = 8
        ctx = prepare(g)
        ctx.communities("degeneracy")  # warm the shared pieces
        existence_tracker = Tracker()
        counting_tracker = Tracker()
        assert has_clique(g, k, tracker=existence_tracker, prepared=ctx)
        # Pin the reference engine: this test reads the search phase of
        # the tracked work algebra, which the batch frontier engine (the
        # auto pick for k >= 4 counting) deliberately skips.
        result = count_cliques(
            g, k, tracker=counting_tracker, prepared=ctx, engine="reference"
        )
        assert result.count > 100  # the instance is clique-rich
        assert existence_tracker.work < 0.9 * counting_tracker.work
        # The witness search specifically must be far cheaper than the
        # counting search.
        count_search = counting_tracker.phases["search"].work
        exist_total = existence_tracker.work
        assert exist_total < counting_tracker.work
        assert count_search > 0

    def test_tracker_is_threaded_through(self):
        g = complete_graph(6)
        tracker = Tracker()
        assert has_clique(g, 4, tracker=tracker)
        assert tracker.work > 0

    def test_early_exit_on_negative_instance_via_degeneracy_bound(self):
        # A forest has degeneracy 1: the fast path answers k=4 without
        # touching communities at all.
        g = gnm_random_graph(50, 40, seed=0)
        tracker = Tracker()
        result = has_clique(g, 20, tracker=tracker)
        assert result == (count_cliques(g, 20).count > 0)


class TestListingCanonicalOrder:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_engines_return_canonical_order(self, variant):
        # The single sort lives in run_variant: its output must already be
        # lexicographically sorted tuples of sorted vertex ids, so
        # list_cliques needn't (and doesn't) re-sort.
        g, _ = plant_cliques(gnm_random_graph(30, 140, seed=7), [7], seed=7)
        result = run_variant(g, 5, variant, Tracker(), collect=True)
        assert result.cliques is not None
        assert result.cliques == sorted(result.cliques), variant
        assert all(list(c) == sorted(c) for c in result.cliques)

    def test_list_cliques_does_not_copy_or_resort(self):
        g = complete_graph(6)
        out = list_cliques(g, 4)
        assert out == sorted(out)
        assert out == [tuple(c) for c in
                       __import__("itertools").combinations(range(6), 4)]

    def test_all_variants_agree_on_listing(self):
        g, _ = plant_cliques(gnm_random_graph(22, 90, seed=5), [6], seed=5)
        listings = {v: list_cliques(g, 4, variant=v) for v in VARIANTS}
        first = listings[VARIANTS[0]]
        for v, cl in listings.items():
            assert cl == first, v
