"""The differential/metamorphic oracles: hold on good graphs, catch liars."""

import pytest

from repro.fuzz.oracles import (
    ORACLES,
    count_perturbation,
    run_oracle,
    run_oracles,
    set_count_perturbation,
)
from repro.fuzz.strategies import build_family, graph_from_edge_list
from repro.graphs import complete_graph
from repro.graphs.generators import gnm_random_graph, plant_cliques


@pytest.fixture
def sample_graphs():
    base = gnm_random_graph(18, 40, seed=11)
    planted, _ = plant_cliques(base, [6], seed=12)
    return [
        planted,
        complete_graph(6),
        build_family("kneser", {"ground": 5, "subset": 2}),  # Petersen
        build_family("clique-chain", {"n_cliques": 3, "clique_size": 5, "overlap": 2}),
        graph_from_edge_list([], 4),  # edgeless
    ]


class TestOraclesHoldOnCorrectEngines:
    @pytest.mark.parametrize("name", sorted(ORACLES))
    @pytest.mark.parametrize("k", [4, 5])
    def test_oracle_passes(self, sample_graphs, name, k):
        for i, g in enumerate(sample_graphs):
            assert run_oracle(name, g, k, seed=7) == [], (name, k, i)

    def test_run_oracles_returns_empty_on_clean_graph(self):
        g = complete_graph(5)
        assert run_oracles(g, 4) == {}

    def test_run_oracles_respects_name_subset(self):
        g = complete_graph(5)
        assert run_oracles(g, 4, names=["engines", "relabel"]) == {}

    def test_oracle_seed_is_deterministic(self, sample_graphs):
        g = sample_graphs[0]
        for name in ("relabel", "deletion", "union", "planted"):
            assert run_oracle(name, g, 4, seed=3) == run_oracle(name, g, 4, seed=3)


class TestUnknownNames:
    def test_run_oracle_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown oracle"):
            run_oracle("nope", complete_graph(4), 4)


class TestPerturbationHook:
    """The acceptance gate: an injected count lie must surface."""

    def _lie(self, engine, graph, k, true_count):
        if engine == "frontier" and true_count > 0:
            return true_count + 1
        return true_count

    def test_engines_oracle_catches_frontier_off_by_one(self):
        g = complete_graph(6)
        with count_perturbation(self._lie):
            msgs = run_oracle("engines", g, 4)
        assert msgs and "disagree" in msgs[0]
        # and the hook really is scoped: cleared on exit
        assert run_oracle("engines", g, 4) == []

    def test_union_oracle_catches_the_same_lie(self):
        # Additivity breaks: count(G ⊔ H) + 1 != (count(G)+1) + (count(H)+1).
        g = complete_graph(5)
        with count_perturbation(self._lie):
            msgs = run_oracle("union", g, 4, seed=0)
        assert msgs and "not additive" in msgs[0]

    def test_set_count_perturbation_none_clears(self):
        set_count_perturbation(self._lie)
        try:
            assert run_oracle("engines", complete_graph(5), 4) != []
        finally:
            set_count_perturbation(None)
        assert run_oracle("engines", complete_graph(5), 4) == []

    def test_perturbing_reference_is_caught_by_process_oracle(self):
        def lie(engine, graph, k, true_count):
            return true_count + 2 if engine == "process" else true_count

        with count_perturbation(lie):
            msgs = run_oracle("process", complete_graph(5), 4)
        assert msgs and "workers=2" in msgs[0]


class TestMetamorphicEdgeCases:
    def test_relabel_trivial_on_tiny_graph(self):
        assert run_oracle("relabel", graph_from_edge_list([(0, 1)], 2), 4) == []

    def test_deletion_noop_on_edgeless_graph(self):
        assert run_oracle("deletion", graph_from_edge_list([], 3), 4) == []

    def test_spectrum_holds_on_triangle_free_graph(self):
        # Petersen: spectrum must be zero from k=3 up, with no support gap.
        petersen = build_family("kneser", {"ground": 5, "subset": 2})
        assert run_oracle("spectrum", petersen, 4) == []
