"""Unit tests for Algorithm 2 (RecursiveCount)."""

import numpy as np
import pytest

from repro.core.recursive import SearchStats, recursive_count
from repro.graphs import complete_graph, from_edges, gnm_random_graph, orient_by_order
from repro.triangles import build_communities


def setup(g):
    dag = orient_by_order(g, np.arange(g.num_vertices))
    return dag, build_communities(dag)


class TestBaseCases:
    def test_c1_counts_candidates(self):
        g = complete_graph(6)
        dag, comms = setup(g)
        stats = SearchStats()
        count, depth = recursive_count(
            dag, comms, np.array([1, 2, 3], dtype=np.int32), 1, 3, stats
        )
        assert count == 3
        assert depth == 1.0

    def test_c1_emits(self):
        g = complete_graph(5)
        dag, comms = setup(g)
        out = []
        recursive_count(
            dag,
            comms,
            np.array([1, 3], dtype=np.int32),
            1,
            3,
            SearchStats(),
            emit=out.append,
            prefix=[0],
        )
        assert out == [[0, 1], [0, 3]]

    def test_c2_counts_induced_edges(self):
        # Path 0-1-2-3: induced edges among {1,2,3} are (1,2),(2,3).
        g = from_edges([(0, 1), (1, 2), (2, 3)])
        dag, comms = setup(g)
        stats = SearchStats()
        count, _ = recursive_count(
            dag, comms, np.array([1, 2, 3], dtype=np.int32), 2, 4, stats
        )
        assert count == 2

    def test_c2_empty_candidates(self):
        g = complete_graph(4)
        dag, comms = setup(g)
        count, _ = recursive_count(
            dag, comms, np.array([], dtype=np.int32), 2, 4, SearchStats()
        )
        assert count == 0

    def test_invalid_c(self):
        g = complete_graph(4)
        dag, comms = setup(g)
        with pytest.raises(ValueError):
            recursive_count(
                dag, comms, np.arange(4, dtype=np.int32), 0, 2, SearchStats()
            )


class TestRecursiveCase:
    def test_c3_inside_k5(self):
        # K5: candidates {1,2,3} with c=3 -> 3-cliques: exactly 1 ({1,2,3}).
        g = complete_graph(5)
        dag, comms = setup(g)
        count, _ = recursive_count(
            dag, comms, np.array([1, 2, 3], dtype=np.int32), 3, 5, SearchStats()
        )
        assert count == 1

    def test_c4_inside_k8(self):
        # candidates {1..6}, c=4 -> C(6,4) = 15 4-cliques.
        g = complete_graph(8)
        dag, comms = setup(g)
        count, _ = recursive_count(
            dag, comms, np.arange(1, 7, dtype=np.int32), 4, 6, SearchStats()
        )
        assert count == 15

    def test_figure3_no_6_clique(self):
        # The Figure 3 graph: searching for a 6-clique aborts because the
        # pair (v3, v4) is not an edge.
        g = from_edges(
            [
                (0, 1), (0, 2), (0, 3), (0, 4), (0, 5),
                (1, 2), (1, 3), (1, 4), (1, 5),
                (2, 5), (2, 4),
                (3, 5), (4, 5),
            ]
        )
        dag, comms = setup(g)
        eid = dag.edge_id(0, 5)
        candidates = comms.of(eid)
        assert candidates.size == 4  # {1,2,3,4}
        count, _ = recursive_count(dag, comms, candidates, 4, 6, SearchStats())
        assert count == 0

    def test_depth_grows_with_k(self):
        g = complete_graph(12)
        dag, comms = setup(g)
        depths = []
        for c in [2, 4, 6, 8]:
            _, d = recursive_count(
                dag,
                comms,
                np.arange(1, 11, dtype=np.int32),
                c,
                c + 2,
                SearchStats(),
            )
            depths.append(d)
        assert depths == sorted(depths)


class TestPruning:
    def test_prune_off_same_count(self):
        g = gnm_random_graph(25, 120, seed=1)
        dag, comms = setup(g)
        cands = np.arange(25, dtype=np.int32)
        a, _ = recursive_count(dag, comms, cands, 4, 6, SearchStats(), prune=True)
        b, _ = recursive_count(dag, comms, cands, 4, 6, SearchStats(), prune=False)
        assert a == b

    def test_prune_reduces_probes(self):
        g = complete_graph(14)
        dag, comms = setup(g)
        cands = np.arange(1, 13, dtype=np.int32)
        with_prune = SearchStats()
        without = SearchStats()
        recursive_count(dag, comms, cands, 6, 8, with_prune, prune=True)
        recursive_count(dag, comms, cands, 6, 8, without, prune=False)
        assert with_prune.probes < without.probes
        assert with_prune.work < without.work


class TestStats:
    def test_stats_merge(self):
        a, b = SearchStats(), SearchStats()
        a.work, a.probes, a.calls = 5.0, 2, 1
        b.work, b.probes, b.calls = 7.0, 3, 4
        a.merge(b)
        assert a.work == 12.0 and a.probes == 5 and a.calls == 5

    def test_listing_charges_k_per_clique(self):
        g = complete_graph(6)
        dag, comms = setup(g)
        stats = SearchStats()
        recursive_count(
            dag, comms, np.array([1, 2, 3, 4], dtype=np.int32), 1, 6, stats
        )
        assert stats.work == 6 * 4
