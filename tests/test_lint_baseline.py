"""Fingerprint identity and baseline round-trip properties.

The baseline's contract is that a fingerprint identifies a finding by
*what* it says (rule, path, symbol, message), never *where* it says it
(line/col) — and that no two materially different findings share one.
"""

from __future__ import annotations

import os
import random

from repro.lint import Finding, load_baseline, partition, run_lint, save_baseline

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "lint_fixtures")


def test_field_separator_prevents_shift_collisions():
    # Without a separator these pairs would hash the same concatenation.
    a = Finding("R3", "x.py", 1, 0, "sym", "msg")
    b = Finding("R3", "x.py", 1, 0, "symm", "sg")
    assert a.fingerprint() != b.fingerprint()
    c = Finding("R3", "x.pya", 1, 0, "b", "msg")
    d = Finding("R3", "x.py", 1, 0, "ab", "msg")
    assert c.fingerprint() != d.fingerprint()


def test_fingerprints_injective_over_fixture_corpus():
    findings = run_lint([FIXTURES])
    identities = {(f.rule, f.path, f.symbol, f.message) for f in findings}
    prints = {f.fingerprint() for f in findings}
    # One fingerprint per distinct identity (same-identity findings on
    # different lines deliberately collapse — that is the design).
    assert len(prints) == len(identities)
    assert len(identities) > 10  # the corpus is non-trivial


def _random_finding(rng: random.Random) -> Finding:
    def field(chars: str = "abcxyz_./") -> str:
        return "".join(rng.choice(chars) for _ in range(rng.randint(0, 8)))

    return Finding(
        rule=rng.choice(["R1", "R3", "R5", "R6", "R7", "R8"]),
        path=f"src/{field('abc')}.py",
        line=rng.randint(1, 500),
        col=rng.randint(0, 80),
        symbol=field(),
        message=field(),
    )


def test_baseline_roundtrip_is_order_insensitive(tmp_path):
    rng = random.Random(20260808)
    findings = [_random_finding(rng) for _ in range(150)]
    path = str(tmp_path / "b.json")
    save_baseline(path, findings)
    baseline = load_baseline(path)
    shuffled = list(findings)
    rng.shuffle(shuffled)
    new, old = partition(shuffled, baseline)
    assert new == []
    assert len(old) == len(findings)


def test_partition_budget_counts_per_fingerprint(tmp_path):
    f = Finding("R5", "a.py", 3, 0, "w", "writes into module global '_X'")
    path = str(tmp_path / "b.json")
    save_baseline(path, [f, f])
    baseline = load_baseline(path)
    assert baseline[f.fingerprint()] == 2
    new, old = partition([f, f, f], baseline)
    assert len(new) == 1 and len(old) == 2
    # A line shift alone never consumes extra budget.
    shifted = Finding("R5", "a.py", 99, 4, "w", "writes into module global '_X'")
    new, old = partition([f, shifted], baseline)
    assert new == [] and len(old) == 2
