"""The dynamic mutation layer: deltas, patch-in-place, and the wrapper.

Tentpole contract: after any batch of edge inserts/deletes the
incrementally maintained counts/listings, the patched warm context, and
a recompute-from-scratch on the new snapshot are indistinguishable —
while the tracked work of the incremental path stays measurably below a
cold recount.
"""

import numpy as np
import pytest

from repro.core.api import count_cliques, list_cliques
from repro.core.frontier import frontier_count_cliques
from repro.core.prepared import (
    PreparedCache,
    PreparedGraph,
    clear_prepared_cache,
    prepare,
    prepared_cache_info,
)
from repro.dynamic import (
    DynamicGraph,
    MutationError,
    VerificationError,
    cliques_through_edges,
    count_delta,
    patch_prepared,
    random_trace,
    replay_trace,
)
from repro.dynamic import patch as patch_mod
from repro.graphs import from_edges, gnm_random_graph
from repro.graphs.generators import plant_cliques
from repro.obs import MetricsRegistry
from repro.pram.tracker import Tracker


def rich_graph(seed=3):
    g = gnm_random_graph(40, 180, seed=seed)
    g, _ = plant_cliques(g, [7, 6], seed=seed)
    return g


def scratch_count(graph, k):
    return frontier_count_cliques(graph, k, prepared=PreparedGraph(graph))


class TestBatchValidation:
    def g(self):
        return from_edges(np.asarray([[0, 1], [1, 2], [0, 2]]), num_vertices=4)

    def test_insert_existing_edge_rejected(self):
        with pytest.raises(MutationError, match="existing"):
            DynamicGraph(self.g()).insert_edges([(0, 1)])

    def test_delete_missing_edge_rejected(self):
        with pytest.raises(MutationError, match="missing"):
            DynamicGraph(self.g()).delete_edges([(0, 3)])

    def test_self_loop_rejected(self):
        with pytest.raises(MutationError, match="self-loop"):
            DynamicGraph(self.g()).insert_edges([(2, 2)])

    def test_out_of_range_rejected(self):
        with pytest.raises(MutationError, match="out of range"):
            DynamicGraph(self.g()).insert_edges([(0, 9)])

    def test_duplicate_in_batch_rejected(self):
        with pytest.raises(MutationError, match="duplicate"):
            DynamicGraph(self.g()).insert_edges([(0, 3), (3, 0)])

    def test_failed_batch_leaves_state_untouched(self):
        dyn = DynamicGraph(self.g())
        dyn.count(3)
        with pytest.raises(MutationError):
            dyn.delete_edges([(0, 1), (0, 3)])
        assert dyn.version == 0
        assert dyn.has_edge(0, 1)
        assert dyn.count(3) == 1

    def test_empty_batch_is_a_noop(self):
        dyn = DynamicGraph(self.g())
        record = dyn.insert_edges([])
        assert record.batch == () and dyn.version == 0


class TestIncrementalEqualsScratch:
    def test_mixed_trace_all_ks(self):
        g = rich_graph()
        dyn = DynamicGraph(g, verify=True)
        for k in (3, 4, 5):
            dyn.count(k)
        dyn.cliques(4)
        trace = random_trace(g, batches=5, batch_size=4, seed=11)
        dyn.apply_trace(trace)
        assert dyn.version == len(trace)
        for k in (3, 4, 5):
            assert dyn.count(k) == scratch_count(dyn.graph, k)
        assert dyn.cliques(4) == list_cliques(
            dyn.graph, 4, prepared=PreparedGraph(dyn.graph)
        )

    def test_batch_equals_sequential_singles(self):
        g = rich_graph(seed=5)
        pairs = list(g.edges())
        batch = [pairs[0], pairs[7], pairs[19]]
        as_batch = DynamicGraph(g)
        as_batch.count(4)
        as_batch.delete_edges(batch)
        one_by_one = DynamicGraph(g)
        one_by_one.count(4)
        for pair in batch:
            one_by_one.delete_edges([pair])
        assert as_batch.count(4) == one_by_one.count(4)
        assert as_batch.graph == one_by_one.graph

    def test_insert_delete_round_trip(self):
        g = rich_graph(seed=7)
        dyn = DynamicGraph(g)
        before = {k: dyn.count(k) for k in (3, 4)}
        listing = dyn.cliques(4)
        batch = [(0, 39), (1, 38), (2, 37)]
        batch = [p for p in batch if not g.has_edge(*p)]
        dyn.insert_edges(batch)
        dyn.delete_edges(batch)
        assert {k: dyn.count(k) for k in (3, 4)} == before
        assert dyn.cliques(4) == listing
        assert dyn.graph == g

    def test_verification_gate_catches_a_corrupted_count(self):
        g = rich_graph(seed=9)
        dyn = DynamicGraph(g, verify=True)
        dyn.count(4)
        dyn._counts[4] += 1
        with pytest.raises(VerificationError, match="incremental count"):
            dyn.delete_edges([next(iter(g.edges()))])


class TestDeltaEngine:
    def test_signs_and_union_semantics(self):
        g = rich_graph(seed=2)
        us, vs = g.edge_array()
        batch = [(int(us[i]), int(vs[i])) for i in (0, 3, 7)]
        kept = [
            (int(u), int(v))
            for u, v in zip(us, vs)
            if (int(u), int(v)) not in set(batch)
        ]
        smaller = from_edges(
            np.asarray(kept, dtype=np.int64), num_vertices=g.num_vertices
        )
        deltas = count_delta(g, smaller, "delete", batch, ks=(3, 4))
        for k in (3, 4):
            assert deltas[k].count == scratch_count(smaller, k) - scratch_count(
                g, k
            )
        back = count_delta(smaller, g, "insert", batch, ks=(3, 4))
        for k in (3, 4):
            assert back[k].count == -deltas[k].count

    def test_k1_and_k2_closed_forms(self):
        g = rich_graph(seed=4)
        us, vs = g.edge_array()
        batch = [(int(us[0]), int(vs[0])), (int(us[5]), int(vs[5]))]
        res = cliques_through_edges(g, batch, 1)
        assert res.count == 0
        res = cliques_through_edges(g, batch, 2, collect=True)
        assert res.count == 2 and res.cliques == sorted(batch)

    def test_collected_cliques_contain_a_batch_edge(self):
        g = rich_graph(seed=6)
        us, vs = g.edge_array()
        batch = [(int(us[i]), int(vs[i])) for i in range(4)]
        res = cliques_through_edges(g, batch, 4, collect=True)
        assert res.count == len(res.cliques)
        batch_set = set(batch)
        for c in res.cliques:
            members = set(c)
            assert any(u in members and v in members for u, v in batch_set)
        assert res.cliques == sorted(res.cliques)
        assert len(set(res.cliques)) == len(res.cliques)


class TestPatchInPlace:
    def warm_context(self, g):
        ctx = PreparedGraph(g)
        frontier_count_cliques(g, 4, prepared=ctx)  # builds through tables
        ctx.edge_order("exact")
        ctx.kernel(4)
        return ctx

    def test_patched_context_counts_exactly(self):
        g = rich_graph(seed=8)
        ctx = self.warm_context(g)
        us, vs = g.edge_array()
        batch = [(int(us[i]), int(vs[i])) for i in (1, 4)]
        kept = [
            (int(u), int(v))
            for u, v in zip(us, vs)
            if (int(u), int(v)) not in set(batch)
        ]
        new_g = from_edges(
            np.asarray(kept, dtype=np.int64), num_vertices=g.num_vertices
        )
        patched, report = patch_prepared(ctx, new_g, "delete", batch)
        assert patched.version == ctx.version + 1
        for k in (3, 4, 5):
            assert (
                frontier_count_cliques(new_g, k, prepared=patched)
                == scratch_count(new_g, k)
            )

    def test_report_accounts_every_piece(self):
        g = rich_graph(seed=10)
        ctx = self.warm_context(g)
        batch = [(0, 1)] if g.has_edge(0, 1) else [next(iter(g.edges()))]
        kept = [p for p in g.edges() if p != batch[0]]
        new_g = from_edges(
            np.asarray(kept, dtype=np.int64), num_vertices=g.num_vertices
        )
        _, report = patch_prepared(ctx, new_g, "delete", batch)
        # Warm pieces: order/dag/triangles/communities/frontier_tables for
        # the degeneracy variant plus one edge order and one kernel.
        assert report.detail["order/degeneracy"] == "carried"
        assert report.detail["triangles/degeneracy"] == "patched"
        assert report.detail["dag/degeneracy"] == "rebuilt"
        assert report.detail["communities/degeneracy"] == "rebuilt"
        assert report.detail["frontier_tables/degeneracy"] == "rebuilt"
        assert report.detail["edge_order/exact"] == "invalidated"
        assert report.detail["kernel/4"] == "invalidated"
        assert report.total == len(report.detail)
        assert 0.0 < report.patched_ratio < 1.0

    def test_patched_triangles_match_a_cold_rebuild(self):
        g = rich_graph(seed=12)
        trace = random_trace(g, batches=1, batch_size=5, seed=1)
        op = trace[0]["op"]
        batch = [tuple(p) for p in trace[0]["batch"]]
        dyn = DynamicGraph(g)
        dyn.prepared.triangles()
        dyn._mutate(op, batch)
        patched = dyn.prepared.peek("triangles", "degeneracy")
        # The carried order makes rank ids stable, so a cold list on the
        # same orientation must be byte-identical.
        cold = PreparedGraph(dyn.graph)
        cold.install_piece("order", "degeneracy", dyn.prepared.peek("order", "degeneracy"))
        np.testing.assert_array_equal(patched, cold.triangles())

    def test_pack_limit_falls_back_to_invalidation(self, monkeypatch):
        g = rich_graph(seed=14)
        ctx = self.warm_context(g)
        monkeypatch.setattr(patch_mod, "PACK_LIMIT", 10)
        batch = [next(iter(g.edges()))]
        kept = [p for p in g.edges() if p != batch[0]]
        new_g = from_edges(
            np.asarray(kept, dtype=np.int64), num_vertices=g.num_vertices
        )
        patched, report = patch_prepared(ctx, new_g, "delete", batch)
        assert report.detail["triangles/degeneracy"] == "invalidated"
        # Correctness survives the fallback: pieces rebuild lazily.
        assert (
            frontier_count_cliques(new_g, 4, prepared=patched)
            == scratch_count(new_g, 4)
        )

    def test_vertex_count_change_rejected(self):
        g = rich_graph(seed=16)
        ctx = PreparedGraph(g)
        other = gnm_random_graph(10, 20, seed=0)
        with pytest.raises(ValueError, match="vertex set"):
            patch_prepared(ctx, other, "delete", [(0, 1)])


class TestMutationIsCheaperThanRecount:
    def test_tracked_work_beats_cold_recount(self):
        g = rich_graph(seed=20)
        tracker = Tracker()
        registry = MetricsRegistry()
        tracker.attach_metrics(registry)
        dyn = DynamicGraph(g, tracker=tracker)
        dyn.count(4)  # warm up: preprocessing + first count
        warm_start = tracker.work
        edge = next(iter(g.edges()))
        dyn.delete_edges([edge])
        assert dyn.count(4) == scratch_count(dyn.graph, 4)
        incremental_work = tracker.work - warm_start

        cold_tracker = Tracker()
        count_cliques(
            dyn.graph, 4, tracker=cold_tracker, prepared=PreparedGraph(dyn.graph)
        )
        assert incremental_work < cold_tracker.work
        assert registry.gauge("dynamic.patched_ratio").value > 0

    def test_dynamic_metrics_are_recorded(self):
        g = rich_graph(seed=22)
        tracker = Tracker()
        registry = MetricsRegistry()
        tracker.attach_metrics(registry)
        dyn = DynamicGraph(g, tracker=tracker)
        dyn.count(4)
        dyn.apply_trace(random_trace(g, batches=2, batch_size=3, seed=2))
        assert registry.counter("dynamic.mutations").value == 2
        assert registry.histogram("dynamic.batch_size").count == 2
        assert registry.counter("dynamic.patched_pieces").value > 0
        assert registry.counter("dynamic.invalidated_pieces").value == 0
        names = registry.names()
        for expected in (
            "dynamic.touched_communities",
            "dynamic.affected_triangles",
            "dynamic.carried_pieces",
            "dynamic.rebuilt_pieces",
            "dynamic.patched_ratio",
        ):
            assert expected in names


class TestCacheIntegration:
    def test_facade_stays_warm_after_mutation(self):
        clear_prepared_cache()
        g = rich_graph(seed=24)
        dyn = DynamicGraph(g)
        dyn.count(4)
        dyn.delete_edges([next(iter(g.edges()))])
        before = prepared_cache_info()
        # The façade must serve the adopted patched context (a hit under
        # the bumped version token), not rebuild from scratch.
        assert prepare(dyn.graph) is dyn.prepared
        after = prepared_cache_info()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_superseded_snapshot_is_invalidated(self):
        clear_prepared_cache()
        g = rich_graph(seed=26)
        prepare(g)  # façade entry for the original snapshot
        dyn = DynamicGraph(g)
        dyn.count(4)
        old_invalidations = prepared_cache_info()["invalidations"]
        dyn.delete_edges([next(iter(g.edges()))])
        assert prepared_cache_info()["invalidations"] > old_invalidations

    def test_private_cache_is_honored(self):
        cache = PreparedCache()
        g = rich_graph(seed=28)
        dyn = DynamicGraph(g, cache=cache)
        dyn.count(4)
        dyn.delete_edges([next(iter(g.edges()))])
        assert cache.get(dyn.graph) is dyn.prepared


class TestTraces:
    def test_replay_reproduces_final_state(self):
        g = rich_graph(seed=30)
        dyn = DynamicGraph(g)
        dyn.count(4)
        trace = random_trace(g, batches=4, batch_size=3, seed=3)
        dyn.apply_trace(trace)
        again = replay_trace(g, dyn.trace(), ks=(4,))
        assert again.graph == dyn.graph
        assert again.count(4) == dyn.count(4)

    def test_random_trace_is_always_valid_and_seeded(self):
        g = rich_graph(seed=32)
        a = random_trace(g, batches=6, batch_size=4, seed=5)
        b = random_trace(g, batches=6, batch_size=4, seed=5)
        assert a == b
        replay_trace(g, a, verify=False)  # must not raise MutationError

    def test_bad_trace_op_rejected(self):
        g = rich_graph(seed=34)
        with pytest.raises(MutationError, match="insert/delete"):
            DynamicGraph(g).apply_trace([{"op": "swap", "batch": [[0, 1]]}])
