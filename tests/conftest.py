"""Shared fixtures and oracle helpers for the test suite."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.prepared import clear_prepared_cache
from repro.graphs import (
    CSRGraph,
    clique_chain,
    complete_graph,
    empty_graph,
    from_edges,
    gnm_random_graph,
)


@pytest.fixture(autouse=True)
def _fresh_prepared_cache():
    """Isolate tests from the façade's module-level preprocessing cache.

    Session-scoped graph fixtures are shared across tests, so without
    this a test's tracked work would depend on whether an earlier test
    already warmed the cache for the same graph object.
    """
    clear_prepared_cache()
    yield
    clear_prepared_cache()


def nx_graph(graph: CSRGraph):
    """Convert a CSRGraph to a networkx Graph (oracle use only)."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    us, vs = graph.edge_array()
    g.add_edges_from(zip(us.tolist(), vs.tolist()))
    return g


def nx_clique_count(graph: CSRGraph, k: int) -> int:
    """Count k-cliques via networkx.enumerate_all_cliques."""
    import networkx as nx

    return sum(
        1 for c in nx.enumerate_all_cliques(nx_graph(graph)) if len(c) == k
    )


def random_graph_suite():
    """A deterministic batch of small random graphs for exact checks."""
    suite = []
    for seed, (n, m) in enumerate(
        [(8, 12), (12, 30), (16, 50), (20, 80), (25, 120), (30, 160)]
    ):
        suite.append(gnm_random_graph(n, m, seed=seed * 7 + 1))
    return suite


@pytest.fixture(scope="session")
def small_random_graphs():
    return random_graph_suite()


@pytest.fixture(scope="session")
def petersen():
    """The Petersen graph: vertex-transitive, triangle-free."""
    edges = [(i, (i + 1) % 5) for i in range(5)]
    edges += [(i + 5, ((i + 2) % 5) + 5) for i in range(5)]
    edges += [(i, i + 5) for i in range(5)]
    return from_edges(np.asarray(edges, dtype=np.int64), num_vertices=10)


@pytest.fixture(scope="session")
def k6():
    return complete_graph(6)


@pytest.fixture(scope="session")
def chain4x6():
    return clique_chain(4, 6, overlap=2)


@pytest.fixture
def empty10():
    return empty_graph(10)
