"""Unit tests for the scoped work/depth tracker."""

import pytest

from repro.pram.cost import Cost
from repro.pram.tracker import NULL_TRACKER, Tracker


class TestSequentialCharging:
    def test_charges_accumulate(self):
        t = Tracker()
        t.charge(Cost(5, 2))
        t.charge(Cost(3, 1))
        assert t.total == Cost(8, 3)

    def test_charge_ops_default_depth(self):
        t = Tracker()
        t.charge_ops(7)
        assert t.total == Cost(7, 7)

    def test_charge_ops_explicit_depth(self):
        t = Tracker()
        t.charge_ops(7, 2)
        assert t.total == Cost(7, 2)

    def test_work_depth_properties(self):
        t = Tracker()
        t.charge(Cost(4, 3))
        assert t.work == 4 and t.depth == 3

    def test_time_on(self):
        t = Tracker()
        t.charge(Cost(100, 5))
        assert t.time_on(10) == pytest.approx(15)


class TestParallelRegions:
    def test_tasks_combine_with_par(self):
        t = Tracker()
        with t.parallel() as region:
            with region.task():
                t.charge(Cost(10, 4))
            with region.task():
                t.charge(Cost(20, 7))
        assert t.total == Cost(30, 7)

    def test_add_task_cost_directly(self):
        t = Tracker()
        with t.parallel() as region:
            region.add_task_cost(Cost(10, 4))
            region.add_task_cost(Cost(20, 7))
        assert t.total == Cost(30, 7)

    def test_nested_regions(self):
        t = Tracker()
        with t.parallel() as outer:
            with outer.task():
                with t.parallel() as inner:
                    inner.add_task_cost(Cost(5, 5))
                    inner.add_task_cost(Cost(5, 3))
            with outer.task():
                t.charge(Cost(1, 1))
        # inner region: (10, 5); outer = (10,5) | (1,1) = (11, 5)
        assert t.total == Cost(11, 5)

    def test_sequential_around_region(self):
        t = Tracker()
        t.charge(Cost(2, 2))
        with t.parallel() as region:
            region.add_task_cost(Cost(10, 3))
        t.charge(Cost(1, 1))
        assert t.total == Cost(13, 6)

    def test_closed_region_rejects_tasks(self):
        t = Tracker()
        with t.parallel() as region:
            pass
        with pytest.raises(RuntimeError):
            region.add_task_cost(Cost(1, 1))


class TestPhases:
    def test_phase_attribution(self):
        t = Tracker()
        with t.phase("a"):
            t.charge(Cost(5, 5))
        with t.phase("b"):
            t.charge(Cost(3, 3))
        assert t.phases["a"] == Cost(5, 5)
        assert t.phases["b"] == Cost(3, 3)

    def test_unphased_charges_not_attributed(self):
        t = Tracker()
        t.charge(Cost(9, 9))
        assert t.phases == {}
        assert t.total == Cost(9, 9)

    def test_nested_phase_goes_to_innermost(self):
        t = Tracker()
        with t.phase("outer"):
            t.charge(Cost(1, 1))
            with t.phase("inner"):
                t.charge(Cost(2, 2))
        assert t.phases["outer"] == Cost(1, 1)
        assert t.phases["inner"] == Cost(2, 2)


class TestDisabledTracker:
    def test_null_tracker_ignores_charges(self):
        NULL_TRACKER.charge(Cost(100, 100))
        assert NULL_TRACKER.total == Cost(0, 0)

    def test_disabled_tracker_parallel_is_noop(self):
        t = Tracker(enabled=False)
        with t.parallel() as region:
            region.add_task_cost(Cost(5, 5))
        assert t.total == Cost(0, 0)

    def test_disabled_phase_is_noop(self):
        t = Tracker(enabled=False)
        with t.phase("x"):
            t.charge(Cost(1, 1))
        assert t.phases == {}


class TestReset:
    def test_reset_clears_state(self):
        t = Tracker()
        with t.phase("p"):
            t.charge(Cost(5, 5))
        t.reset()
        assert t.total == Cost(0, 0)
        assert t.phases == {}

    def test_reset_with_open_scope_rejected(self):
        t = Tracker()
        t._push_scope()
        with pytest.raises(RuntimeError):
            t.reset()

    def test_reset_inside_open_task_rejected(self):
        t = Tracker()
        with pytest.raises(RuntimeError):
            with t.parallel() as region:
                with region.task():
                    t.reset()  # the task scope is still on the stack


class TestEdgeCases:
    def test_phase_inside_task_attributes_and_folds(self):
        # A named phase inside region.task() must attribute its charge AND
        # still contribute to the region's par-combined cost.
        t = Tracker()
        with t.parallel() as region:
            with region.task():
                with t.phase("inner"):
                    t.charge(Cost(10, 4))
            with region.task():
                t.charge(Cost(1, 1))
        assert t.phases["inner"] == Cost(10, 4)
        assert t.total == Cost(11, 4)

    def test_deeply_nested_regions_par_compose(self):
        # outer task 1 = inner region (3,2)|(3,1) = (6,2); outer task 2 =
        # (4,4); outer region = (10, 4).
        t = Tracker()
        with t.parallel() as outer:
            with outer.task():
                with t.parallel() as inner:
                    with inner.task():
                        t.charge(Cost(3, 2))
                    with inner.task():
                        t.charge(Cost(3, 1))
            with outer.task():
                t.charge(Cost(4, 4))
        assert t.total == Cost(10, 4)

    def test_task_after_region_close_rejected(self):
        t = Tracker()
        with t.parallel() as region:
            pass
        with pytest.raises(RuntimeError):
            with region.task():
                pass

    def test_add_task_cost_after_close_rejected(self):
        t = Tracker()
        with t.parallel() as region:
            region.add_task_cost(Cost(1, 1))
        with pytest.raises(RuntimeError):
            region.add_task_cost(Cost(1, 1))

    def test_exception_in_task_still_charges_and_closes(self):
        t = Tracker()
        with pytest.raises(ValueError):
            with t.parallel() as region:
                with region.task():
                    t.charge(Cost(5, 5))
                    raise ValueError("boom")
        # The failing task's cost was folded before the exception escaped.
        assert t.total == Cost(5, 5)
        assert len(t._stack) == 1  # no leaked scopes
