"""Unit tests for the extremal clique-count bounds."""

import pytest

from repro.analysis import (
    eppstein_maximal_clique_bound,
    hardness_profile,
    max_clique_size_bound,
    per_size_clique_bound,
    wood_total_clique_bound,
)
from repro.baselines import brute_force_count, maximal_cliques
from repro.core import clique_spectrum
from repro.graphs import complete_graph, empty_graph, gnm_random_graph
from repro.orders import degeneracy_order


class TestWoodBound:
    def test_complete_graph_tight_regime(self):
        # K_n: degeneracy n-1, 2^n - 1 cliques; bound = 2·2^{n-1} = 2^n.
        n = 8
        total = sum(clique_spectrum(complete_graph(n)).values())
        assert total == 2**n - 1
        assert total <= wood_total_clique_bound(n, n - 1)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs_within_bound(self, seed):
        g = gnm_random_graph(25, 130, seed=seed)
        s = degeneracy_order(g).degeneracy
        total = sum(clique_spectrum(g).values())
        assert total <= wood_total_clique_bound(25, s)

    def test_empty(self):
        assert wood_total_clique_bound(0, 0) == 0.0


class TestSizeBounds:
    def test_max_clique_bound_holds(self):
        for seed in range(4):
            g = gnm_random_graph(30, 170, seed=seed)
            s = degeneracy_order(g).degeneracy
            from repro.core import max_clique_size

            assert max_clique_size(g) <= max_clique_size_bound(s)

    def test_negative_degeneracy_rejected(self):
        with pytest.raises(ValueError):
            max_clique_size_bound(-1)

    def test_per_size_bound_holds(self):
        g = gnm_random_graph(30, 170, seed=9)
        s = degeneracy_order(g).degeneracy
        for k in range(1, 7):
            assert brute_force_count(g, k) <= per_size_clique_bound(30, s, k)

    def test_per_size_zero_beyond_s_plus_1(self):
        assert per_size_clique_bound(100, 5, 7) == 0.0

    def test_per_size_invalid_k(self):
        with pytest.raises(ValueError):
            per_size_clique_bound(10, 3, 0)


class TestEppsteinBound:
    @pytest.mark.parametrize("seed", range(4))
    def test_maximal_cliques_within_bound(self, seed):
        g = gnm_random_graph(25, 140, seed=seed)
        s = degeneracy_order(g).degeneracy
        assert len(maximal_cliques(g)) <= eppstein_maximal_clique_bound(25, s)


class TestHardnessProfile:
    def test_contains_all_envelopes(self):
        g = gnm_random_graph(20, 80, seed=1)
        profile = hardness_profile(g, k=5)
        assert {"degeneracy", "max_clique_size_bound", "wood_total_cliques"} <= set(
            profile
        )
        assert "cliques_of_size_5" in profile

    def test_empty_graph(self):
        profile = hardness_profile(empty_graph(0))
        assert profile["degeneracy"] == 0.0
