"""The workload layer: trace generation, replay, records v3, the SLO gate.

Covers the issue's satellite checklist: trace replay determinism (same
seed ⇒ identical trace and identical warm-hit sequence against a fresh
daemon), service.* stats accounting under a mixed replayed trace, the
trace-level schema/compare extensions, and the ``repro bench``/``repro
replay`` exit-3 breach-naming regression.
"""

import asyncio
import json

import pytest

from repro.bench.workload import (
    ReplayResult,
    WorkloadSpec,
    generate_trace,
    replay_trace,
    run_workload,
    trace_checksum,
)
from repro.obs import (
    MetricsRegistry,
    compare_records,
    make_record,
    validate_record,
)

SPEC = WorkloadSpec(
    graphs=("bio-sc-ht", "lattice-mesh"),
    queries=20,
    ks=(3, 4),
    zipf_a=1.2,
    mutation_every=7,
    mutation_batch=2,
    scale=0.5,
    seed=13,
)


def _query_rows(result):
    return [r for r in result.rows if r["type"] == "query"]


class TestSpec:
    def test_json_round_trip(self):
        doc = json.loads(json.dumps(SPEC.to_dict()))
        assert WorkloadSpec.from_dict(doc) == SPEC

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(graphs=())
        with pytest.raises(ValueError):
            WorkloadSpec(graphs=("a",), queries=0)
        with pytest.raises(ValueError):
            WorkloadSpec(graphs=("a",), ks=())
        with pytest.raises(ValueError):
            WorkloadSpec(graphs=("a",), mix={"nope": 1.0})
        with pytest.raises(ValueError):
            WorkloadSpec(graphs=("a",), zipf_a=-1)


class TestTraceGeneration:
    def test_same_seed_identical_trace(self):
        assert generate_trace(SPEC) == generate_trace(SPEC)

    def test_different_seed_different_trace(self):
        other = WorkloadSpec.from_dict({**SPEC.to_dict(), "seed": 14})
        assert generate_trace(SPEC) != generate_trace(other)

    def test_trace_shape(self):
        trace = generate_trace(SPEC)
        queries = [e for e in trace if e["type"] == "query"]
        mutations = [e for e in trace if e["type"] == "mutate"]
        assert len(queries) == SPEC.queries
        assert len(mutations) == SPEC.queries // SPEC.mutation_every
        assert {e["graph"] for e in trace} <= set(SPEC.graphs)
        for e in queries:
            assert e["op"] in ("count", "find", "spectrum")
            if e["op"] == "spectrum":
                assert e["k_max"] == max(SPEC.ks)
            else:
                assert e["k"] in SPEC.ks

    def test_trace_is_json_clean(self):
        trace = generate_trace(SPEC)
        assert json.loads(json.dumps(trace)) == trace

    def test_mutations_respect_strict_contract(self):
        # The simulated edge sets must keep every batch legal: replay
        # applies them through the strict DynamicGraph layer, so zero
        # errors proves inserts hit absent pairs and deletes hit
        # present edges.
        spec = WorkloadSpec(
            graphs=("bio-sc-ht",), queries=12, ks=(3,),
            mutation_every=2, mutation_batch=3, scale=0.5, seed=3,
        )
        result = run_workload(spec, metrics=MetricsRegistry())
        assert result.mutations == 6
        assert result.errors == 0


class TestReplayDeterminism:
    def test_same_seed_identical_outcomes_on_fresh_daemons(self):
        r1 = run_workload(SPEC, metrics=MetricsRegistry())
        r2 = run_workload(SPEC, metrics=MetricsRegistry())
        assert r1.count_checksum == r2.count_checksum
        assert r1.queries == r2.queries == SPEC.queries
        # Identical warm-hit sequence: warmth is a deterministic
        # function of the trace for sequential replay on a fresh daemon.
        seq1 = [r["warm"] for r in _query_rows(r1)]
        seq2 = [r["warm"] for r in _query_rows(r2)]
        assert seq1 == seq2

    def test_checksum_chains_in_order(self):
        assert trace_checksum([("a", 1), ("b", 2)]) != trace_checksum(
            [("b", 2), ("a", 1)]
        )

    def test_concurrency_preserves_checksum(self):
        trace = generate_trace(SPEC)
        r1 = replay_trace(trace, SPEC.graphs, seed=SPEC.seed,
                          scale=SPEC.scale, metrics=MetricsRegistry())
        r4 = replay_trace(trace, SPEC.graphs, seed=SPEC.seed,
                          scale=SPEC.scale, concurrency=4,
                          metrics=MetricsRegistry())
        assert r1.count_checksum == r4.count_checksum


class TestServiceAccounting:
    def test_stats_counters_sum_to_trace_length(self):
        from repro.service.daemon import CliqueService, ServiceClient
        from repro.bench.workload import replay_trace_async

        trace = generate_trace(SPEC)

        async def drive():
            service = CliqueService(metrics=MetricsRegistry())
            from repro.bench.workload import _load_for_spec

            for g in SPEC.graphs:
                service.registry.register(
                    g, graph=_load_for_spec(g, SPEC.scale)
                )
            result = await replay_trace_async(
                trace, SPEC.graphs, service=service, seed=SPEC.seed
            )
            stats = await ServiceClient(service).stats()
            await service.aclose()
            return result, stats

        result, stats = asyncio.run(drive())
        svc = stats["service"]
        op_total = sum(
            svc.get(f"service.op.{op}", 0)
            for op in ("count", "find", "spectrum")
        )
        # Coalescing + admission counters account for every event: each
        # query is an op hit, and each either ran an engine, coalesced
        # onto a flight, or was rejected by admission.
        assert op_total == result.queries == SPEC.queries
        assert svc.get("service.mutations", 0) == result.mutations
        ran = svc.get("service.engine_runs", 0)
        coalesced = svc.get("service.coalesced", 0)
        rejected = svc.get("service.rejected", 0)
        assert ran + coalesced + rejected == result.queries
        assert stats["admission"]["inflight_queries"] == 0

    def test_admission_rejections_are_counted_errors(self):
        spec = WorkloadSpec(
            graphs=("bio-sc-ht",), queries=6, ks=(3,), scale=0.5, seed=1
        )
        registry = MetricsRegistry()
        result = run_workload(
            spec, metrics=registry, max_query_work=1e-9
        )
        assert result.errors == result.queries == 6
        exported = registry.to_dict()
        assert exported["replay.errors"]["value"] == 6
        assert exported["service.rejected"]["value"] == 6


class TestTraceRecords:
    def _record_with_trace(self):
        row = ReplayResult(name="t", seed=1, queries=4, errors=0,
                           warm_hits=4, wall_s=0.1).to_trace_record()
        return make_record([], traces=[row])

    def test_schema_round_trip(self):
        record = self._record_with_trace()
        assert validate_record(record) == []
        assert validate_record(json.loads(json.dumps(record))) == []

    def test_missing_trace_field_rejected(self):
        record = self._record_with_trace()
        del record["traces"][0]["count_checksum"]
        assert any(
            "count_checksum" in e for e in validate_record(record)
        )

    def test_duplicate_trace_names_rejected(self):
        record = self._record_with_trace()
        record["traces"].append(dict(record["traces"][0]))
        assert any("duplicates trace" in e for e in validate_record(record))

    def test_v2_records_still_load(self):
        record = self._record_with_trace()
        del record["traces"]
        record["version"] = 2
        assert validate_record(record) == []


def _trace_row(**overrides):
    row = ReplayResult(
        name="w", seed=1, queries=10, warm_hits=9, wall_s=1.0,
        count_checksum=42,
    ).to_trace_record()
    row.update(overrides)
    return row


class TestTraceSLOGate:
    def _compare(self, base_row, cur_row, **kwargs):
        base = make_record([], traces=[base_row])
        cur = make_record([], traces=[cur_row])
        return compare_records(cur, base, metrics=(), **kwargs)

    def test_identical_traces_pass(self):
        report = self._compare(_trace_row(), _trace_row())
        assert report.ok and report.compared_traces == 1

    def test_hit_rate_drop_regresses(self):
        report = self._compare(
            _trace_row(), _trace_row(warm_hits=4, warm_hit_rate=0.4),
            trace_metrics=("warm_hit_rate",), trace_tolerance=0.1,
        )
        assert not report.ok
        assert report.trace_regressions[0].metric == "warm_hit_rate"
        assert report.trace_regressions[0].direction == "down"

    def test_latency_growth_regresses_but_drop_improves(self):
        base = _trace_row(p95_ms=10.0)
        worse = self._compare(
            base, _trace_row(p95_ms=20.0),
            trace_metrics=("p95_ms",), trace_tolerance=0.25,
        )
        assert not worse.ok and worse.trace_regressions[0].direction == "up"
        better = self._compare(
            base, _trace_row(p95_ms=2.0),
            trace_metrics=("p95_ms",), trace_tolerance=0.25,
        )
        assert better.ok and better.trace_improvements

    def test_new_errors_regress(self):
        report = self._compare(
            _trace_row(errors=0), _trace_row(errors=1),
            trace_metrics=("errors",),
        )
        assert not report.ok

    def test_checksum_mismatch_fatal_regardless_of_metrics(self):
        report = self._compare(
            _trace_row(), _trace_row(count_checksum=43), trace_metrics=()
        )
        assert not report.ok
        assert report.checksum_mismatches

    def test_query_count_mismatch_fatal(self):
        report = self._compare(
            _trace_row(), _trace_row(queries=5), trace_metrics=()
        )
        assert not report.ok and report.checksum_mismatches

    def test_unmatched_traces_informational(self):
        base = make_record([], traces=[_trace_row(name="old")])
        cur = make_record([], traces=[_trace_row(name="new")])
        report = compare_records(cur, base, metrics=())
        assert report.ok
        assert report.missing_traces == ["old"]
        assert report.new_traces == ["new"]


class TestReplayCLI:
    ARGS = ["replay", "bio-sc-ht", "--queries", "8", "--seed", "5",
            "-k", "3", "--scale", "0.5"]

    def test_replay_smoke(self, capsys):
        from repro.cli import main

        assert main(list(self.ARGS)) == 0
        out = capsys.readouterr().out
        assert "count checksum" in out

    def test_replay_emit_and_refire(self, tmp_path, capsys):
        from repro.cli import main

        trace_file = str(tmp_path / "trace.json")
        assert main(self.ARGS + ["--emit-trace", trace_file]) == 0
        ck1 = capsys.readouterr().out
        assert main(["replay", "--trace", trace_file]) == 0
        ck2 = capsys.readouterr().out
        line = [l for l in ck1.splitlines() if "checksum" in l]
        assert line and line == [
            l for l in ck2.splitlines() if "checksum" in l
        ]

    def test_replay_compare_pass_and_breach(self, tmp_path, capsys):
        from repro.cli import main

        baseline = str(tmp_path / "base.json")
        assert main(self.ARGS + ["--out", baseline]) == 0
        capsys.readouterr()
        assert main(self.ARGS + ["--compare", baseline]) == 0
        capsys.readouterr()
        # Corrupt the baseline's hit rate upward: current must breach.
        doc = json.load(open(baseline))
        doc["traces"][0]["warm_hit_rate"] = 2.0
        doc["traces"][0]["warm_hits"] = 99
        json.dump(doc, open(baseline, "w"))
        assert main(self.ARGS + ["--compare", baseline]) == 3
        err = capsys.readouterr().err
        assert "warm_hit_rate" in err and "breach" in err


class TestBenchBreachNaming:
    """Regression for the exit-3 message: it must name the breached
    metric, not just the record (the issue's small-fix satellite)."""

    def test_bench_exit3_names_the_metric(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        args = ["bench", "bio-sc-ht", "-k", "3", "--algos", "kclist"]
        baseline = str(tmp_path / "base.json")
        assert main(args + ["--out", baseline]) == 0
        capsys.readouterr()
        doc = json.load(open(baseline))
        for entry in doc["entries"]:
            entry["work"] = entry["work"] / 10.0  # current 10x worse
        json.dump(doc, open(baseline, "w"))
        code = main(args + [
            "--out", str(tmp_path / "cur.json"),
            "--compare", baseline, "--metrics", "work",
            "--tolerance", "0.25",
        ])
        assert code == 3
        err = capsys.readouterr().err
        assert "metric 'work' breached tolerance 0.25" in err
        assert "bio-sc-ht/kclist/k=3" in err

    def test_bench_exit3_names_count_mismatch(self, tmp_path, capsys):
        from repro.cli import main

        args = ["bench", "bio-sc-ht", "-k", "3", "--algos", "kclist"]
        baseline = str(tmp_path / "base.json")
        assert main(args + ["--out", baseline]) == 0
        capsys.readouterr()
        doc = json.load(open(baseline))
        doc["entries"][0]["count"] += 1
        json.dump(doc, open(baseline, "w"))
        code = main(args + [
            "--out", str(tmp_path / "cur.json"), "--compare", baseline,
        ])
        assert code == 3
        err = capsys.readouterr().err
        assert "count mismatch (fatal)" in err
