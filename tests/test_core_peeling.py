"""Unit tests for the k-clique peeling (core decomposition)."""

import numpy as np
import pytest

from repro.core import kclique_peel
from repro.graphs import (
    clique_chain,
    complete_graph,
    empty_graph,
    from_edges,
    gnm_random_graph,
)
from tests.conftest import nx_graph


class TestClassicCoreOracle:
    @pytest.mark.parametrize("seed", range(4))
    def test_k2_equals_core_numbers(self, seed):
        import networkx as nx

        g = gnm_random_graph(22, 70 + 8 * seed, seed=seed)
        res = kclique_peel(g, 2)
        ref = nx.core_number(nx_graph(g))
        assert all(res.core[v] == ref[v] for v in range(22))


class TestTriangleCores:
    def test_complete_graph_uniform(self):
        import math

        res = kclique_peel(complete_graph(6), 3)
        assert np.all(res.core == math.comb(5, 2))  # each vertex in 10 triangles
        assert res.degeneracy == 10

    def test_triangle_free_graph_zero(self):
        g = from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])  # C4
        res = kclique_peel(g, 3)
        assert np.all(res.core == 0)
        assert res.degeneracy == 0

    def test_chain_cores(self):
        # Chain of 5-cliques sharing one vertex: every vertex survives in
        # a subgraph (its own 5-clique) with min triangle-degree C(4,2)=6.
        g = clique_chain(3, 5, overlap=1)
        res = kclique_peel(g, 3)
        assert np.all(res.core == 6)

    def test_pendant_lower_core(self):
        # K5 plus a pendant triangle sharing an edge: the pendant apex has
        # triangle-degree 1 and must get a lower core than the K5 members.
        edges = [(a, b) for a in range(5) for b in range(a + 1, 5)]
        edges += [(0, 5), (1, 5)]  # apex 5 on edge (0,1)
        g = from_edges(np.asarray(edges, dtype=np.int64))
        res = kclique_peel(g, 3)
        assert res.core[5] == 1
        assert np.all(res.core[:5] == res.core[0])
        assert res.core[0] > 1


class TestPeelStructure:
    def test_order_is_permutation(self):
        g = gnm_random_graph(20, 70, seed=1)
        res = kclique_peel(g, 3)
        assert np.array_equal(np.sort(res.order), np.arange(20))

    def test_monotone_core_along_order(self):
        g = gnm_random_graph(20, 80, seed=2)
        res = kclique_peel(g, 3)
        cores_in_order = res.core[res.order]
        assert np.all(np.diff(cores_in_order) >= 0)

    def test_empty_graph(self):
        res = kclique_peel(empty_graph(4), 3)
        assert np.all(res.core == 0)
        assert res.degeneracy == 0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kclique_peel(empty_graph(3), 0)

    def test_densest_prefix_consistency(self):
        # The peel's late prefix reaches at least the densest subgraph's
        # density: peel cores upper-bound membership in dense prefixes.
        from repro.core import kclique_densest_subgraph

        g = gnm_random_graph(25, 140, seed=3)
        res = kclique_peel(g, 3)
        dres = kclique_densest_subgraph(g, 3)
        if dres.vertices:
            # Every vertex of the densest subgraph survives to a prefix
            # with positive min degree: its core is positive.
            assert all(res.core[v] > 0 for v in dres.vertices)
