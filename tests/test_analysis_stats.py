"""Unit tests for graph statistics (Table-2 style summaries)."""

import pytest

from repro.analysis import arboricity_bounds, graph_summary
from repro.graphs import (
    complete_graph,
    empty_graph,
    from_edges,
    gnm_random_graph,
    hypercube_graph,
)


class TestSummary:
    def test_complete_graph(self):
        s = graph_summary(complete_graph(6), "k6", with_sigma=True, with_omega=True)
        assert s.num_vertices == 6
        assert s.num_edges == 15
        assert s.num_triangles == 20
        assert s.degeneracy == 5
        assert s.community_degeneracy == 4
        assert s.clique_number == 6

    def test_ratios(self):
        s = graph_summary(gnm_random_graph(100, 400, seed=1), "g")
        assert s.edges_per_vertex == pytest.approx(4.0)
        assert s.triangles_per_edge == pytest.approx(s.num_triangles / 400)

    def test_triangle_free(self):
        s = graph_summary(hypercube_graph(4), "q4", with_sigma=True)
        assert s.num_triangles == 0
        assert s.community_degeneracy == 0

    def test_empty_graph(self):
        s = graph_summary(empty_graph(5), "empty")
        assert s.num_edges == 0
        assert s.degeneracy == 0
        assert s.triangles_per_edge == 0.0

    def test_optional_fields_default_none(self):
        s = graph_summary(complete_graph(4), "k4")
        assert s.community_degeneracy is None
        assert s.clique_number is None

    def test_row_and_header_align(self):
        s = graph_summary(complete_graph(4), "k4")
        assert len(s.row()) > 0
        assert s.header().split()[0] == "Graph"


class TestArboricity:
    def test_bounds_bracket_known_value(self):
        # K_6 has arboricity ceil(6/2) = 3.
        lo, hi = arboricity_bounds(complete_graph(6))
        assert lo <= 3 <= hi

    def test_tree_arboricity_one(self):
        g = from_edges([(0, 1), (1, 2), (2, 3)])
        lo, hi = arboricity_bounds(g)
        assert lo == 1
        assert hi >= 1

    def test_bounds_consistent(self):
        for seed in range(4):
            g = gnm_random_graph(40, 150 + seed * 20, seed=seed)
            lo, hi = arboricity_bounds(g)
            assert 1 <= lo <= hi

    def test_empty(self):
        lo, hi = arboricity_bounds(empty_graph(4))
        assert (lo, hi) == (0, 0)
