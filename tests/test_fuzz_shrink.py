"""The delta-debugging shrinker and the pytest-regression emitter."""

import importlib.util
import sys

import numpy as np
import pytest

from repro.fuzz.oracles import count_perturbation, run_oracle
from repro.fuzz.shrink import emit_regression, format_regression, shrink_graph
from repro.fuzz.strategies import edge_list, graph_from_edge_list
from repro.graphs import complete_graph
from repro.graphs.generators import gnm_random_graph, plant_cliques


def _count4(graph) -> int:
    from repro.core.frontier import frontier_count_cliques

    return frontier_count_cliques(graph, 4)


class TestShrinkGraph:
    def test_non_failing_input_is_returned_unchanged(self):
        g = complete_graph(6)
        assert shrink_graph(g, lambda _: False) is g

    def test_shrinks_to_k4_kernel(self):
        # Predicate: "graph still has a 4-clique". The 1-minimal answer is
        # K4 itself — 4 vertices, 6 edges.
        base = gnm_random_graph(20, 40, seed=5)
        grown, _ = plant_cliques(base, [6], seed=6)
        assert _count4(grown) > 0
        small = shrink_graph(grown, lambda g: _count4(g) > 0)
        assert small.num_vertices == 4
        assert small.num_edges == 6

    def test_idempotent(self):
        base = gnm_random_graph(18, 36, seed=9)
        grown, _ = plant_cliques(base, [5], seed=10)
        predicate = lambda g: _count4(g) > 0  # noqa: E731
        once = shrink_graph(grown, predicate)
        twice = shrink_graph(once, predicate)
        assert twice.num_vertices == once.num_vertices
        assert edge_list(twice) == edge_list(once)

    def test_deterministic(self):
        base = gnm_random_graph(16, 30, seed=2)
        grown, _ = plant_cliques(base, [5], seed=3)
        predicate = lambda g: _count4(g) > 0  # noqa: E731
        a = shrink_graph(grown, predicate)
        b = shrink_graph(grown, predicate)
        assert edge_list(a) == edge_list(b)
        assert a.num_vertices == b.num_vertices

    def test_edge_only_shrinking(self):
        # Predicate keyed to an edge, not a clique: vertex passes can't
        # remove endpoints, edge passes strip everything else.
        g = graph_from_edge_list(
            [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5)], 6
        )
        small = shrink_graph(g, lambda h: h.num_edges >= 1)
        assert small.num_edges == 1


class TestFormatRegression:
    def test_source_is_self_contained_and_passing_form(self):
        g = complete_graph(4)
        slug, source = format_regression(g, 4, "engines", oracle_seed=17)
        assert f"test_fuzz_regression_{slug}" in source
        assert "ORACLE = 'engines'" in source
        assert "K = 4" in source
        assert "ORACLE_SEED = 17" in source
        assert "NUM_VERTICES = 4" in source
        assert "run_oracle(ORACLE, graph, K, seed=ORACLE_SEED) == []" in source
        compile(source, "<regression>", "exec")  # must be valid python

    def test_note_is_embedded(self):
        _, source = format_regression(
            complete_graph(4), 4, "union", note="Found by case XYZ"
        )
        assert "Found by case XYZ" in source

    def test_slug_depends_on_content(self):
        a, _ = format_regression(complete_graph(4), 4, "engines")
        b, _ = format_regression(complete_graph(5), 4, "engines")
        c, _ = format_regression(complete_graph(4), 5, "engines")
        assert len({a, b, c}) == 3

    def test_empty_graph_renders(self):
        _, source = format_regression(graph_from_edge_list([], 3), 4, "spectrum")
        assert "EDGES = []" in source
        compile(source, "<regression>", "exec")


class TestEmitRegression:
    def test_writes_then_dedupes(self, tmp_path):
        g = complete_graph(4)
        first = emit_regression(str(tmp_path), g, 4, "engines")
        assert first is not None and first.endswith(".py")
        # identical content -> None, nothing new on disk
        assert emit_regression(str(tmp_path), g, 4, "engines") is None
        assert len(list(tmp_path.glob("test_fuzz_regression_*.py"))) == 1

    def test_distinct_cases_get_distinct_files(self, tmp_path):
        emit_regression(str(tmp_path), complete_graph(4), 4, "engines")
        emit_regression(str(tmp_path), complete_graph(5), 4, "engines")
        assert len(list(tmp_path.glob("test_fuzz_regression_*.py"))) == 2


class TestEmittedRegressionEndToEnd:
    """Meta-test: emit a real regression under an injected bug, import it,
    and run its test function — it must fail while the bug is alive and
    pass once the perturbation is cleared."""

    def _lie(self, engine, graph, k, true_count):
        return true_count + 1 if engine == "frontier" and true_count > 0 else true_count

    def test_emitted_module_runs(self, tmp_path):
        base = gnm_random_graph(16, 32, seed=21)
        grown, _ = plant_cliques(base, [5], seed=22)

        with count_perturbation(self._lie):
            assert run_oracle("engines", grown, 4) != []
            small = shrink_graph(
                grown, lambda g: bool(run_oracle("engines", g, 4))
            )
            assert small.num_vertices <= 12
            path = emit_regression(str(tmp_path), small, 4, "engines")
        assert path is not None

        spec = importlib.util.spec_from_file_location("emitted_regression", path)
        module = importlib.util.module_from_spec(spec)
        sys.modules["emitted_regression"] = module
        try:
            spec.loader.exec_module(module)
            test_fns = [
                getattr(module, name)
                for name in dir(module)
                if name.startswith("test_fuzz_regression_")
            ]
            assert len(test_fns) == 1
            # Bug alive: the emitted assertion (oracle holds) must fail.
            with count_perturbation(self._lie):
                with pytest.raises(AssertionError):
                    test_fns[0]()
            # Bug fixed (hook cleared): the regression passes and guards.
            test_fns[0]()
        finally:
            sys.modules.pop("emitted_regression", None)

    def test_emitted_edges_match_the_shrunk_graph(self, tmp_path):
        g = complete_graph(4)
        path = emit_regression(str(tmp_path), g, 4, "engines")
        text = open(path, encoding="utf-8").read()
        namespace = {}
        exec(compile(text, path, "exec"), namespace)  # noqa: S102
        rebuilt = graph_from_edge_list(
            np.asarray(namespace["EDGES"]), namespace["NUM_VERTICES"]
        )
        assert edge_list(rebuilt) == edge_list(g)
