"""Out-of-core sharded frontier: budgeted counts identical to in-RAM.

The sharded engine (``repro.core.sharded``) must produce bit-identical
counts and listings to the in-RAM frontier engine under *every* budget —
including the 1-byte adversarial budget that slices one source vertex
per shard, and the unlimited budget that degenerates to a single shard.
Alongside equality, these tests pin the operational contract: exact
byte prediction before allocation, resident-window enforcement, spill
cleanup on success / error / interrupt, the memory-aware dispatch leg,
and the service-side over-memory admission.
"""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import count_cliques, list_cliques
from repro.core.api import resolve_engine
from repro.core.frontier import (
    build_frontier_tables,
    frontier_count_cliques,
    frontier_list_cliques,
)
from repro.core.prepared import PreparedCache, PreparedGraph
from repro.core.sharded import (
    ShardedTables,
    parse_memory_size,
    plan_shards,
    predict_table_bytes,
    sharded_count_cliques,
    sharded_list_cliques,
)
from repro.baselines import brute_force_count
from repro.core.variants import run_variant
from repro.fuzz.strategies import build_family, family_cases, random_graphs
from repro.graphs import complete_graph, gnm_random_graph
from repro.obs import MetricsRegistry
from repro.pram.tracker import Tracker

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

BUDGETS = [None, 1, 512, 4096, 10**9]


# -- parse_memory_size -----------------------------------------------------


@pytest.mark.parametrize(
    "text,expected",
    [
        ("1048576", 1024 ** 2),
        ("64K", 64 * 1024),
        ("64KB", 64 * 1024),
        ("512M", 512 * 1024 ** 2),
        ("512MiB", 512 * 1024 ** 2),
        ("1.5G", int(1.5 * 1024 ** 3)),
        ("2T", 2 * 1024 ** 4),
        (" 8 K ", 8 * 1024),
        ("unlimited", None),
        ("none", None),
        ("", None),
        ("0", None),
        (None, None),
    ],
)
def test_parse_memory_size(text, expected):
    assert parse_memory_size(text) == expected


@pytest.mark.parametrize("text", ["12 parsecs", "-5M", "G", "1e5Q"])
def test_parse_memory_size_rejects_garbage(text):
    with pytest.raises(ValueError):
        parse_memory_size(text)


# -- exact byte prediction and shard planning ------------------------------


@given(g=random_graphs())
@settings(**SETTINGS)
def test_predicted_bytes_are_exact(g):
    """predict_table_bytes equals the real tables' nbytes, pre-allocation."""
    ctx = PreparedGraph(g)
    dag = ctx.dag("degeneracy")
    tables = build_frontier_tables(dag, ctx.triangles("degeneracy"))
    assert (
        predict_table_bytes(dag.num_edges, dag.max_out_degree)
        == tables.rows.nbytes + tables.rows_in.nbytes
    )


@given(
    g=random_graphs(),
    budget=st.one_of(st.none(), st.integers(min_value=1, max_value=10**6)),
    window=st.integers(min_value=1, max_value=4),
)
@settings(**SETTINGS)
def test_plan_shards_invariants(g, budget, window):
    dag = PreparedGraph(g).dag("degeneracy")
    width = (dag.max_out_degree + 63) // 64
    plan = plan_shards(dag.out_indptr, width, budget, window)
    n, m = dag.num_vertices, dag.num_edges
    # Shards partition [0, n) by vertex and [0, m) by edge row.
    assert plan.shards[0].v_lo == 0 and plan.shards[-1].v_hi == n
    assert plan.shards[0].e0 == 0 and plan.shards[-1].e1 == m
    for prev, cur in zip(plan.shards, plan.shards[1:]):
        assert prev.v_hi == cur.v_lo and prev.e1 == cur.e0
    for s in plan.shards:
        assert int(dag.out_indptr[s.v_lo]) == s.e0
        assert int(dag.out_indptr[s.v_hi]) == s.e1
        # Every multi-vertex shard respects the windowed envelope; a
        # single-vertex shard is the indivisible minimum and may not.
        if budget is not None and s.v_hi - s.v_lo > 1 and width > 0:
            assert plan.table_bytes(s.index) <= max(
                budget // window, plan.bytes_per_edge
            )
    assert plan.total_table_bytes == predict_table_bytes(m, dag.max_out_degree)
    if budget is None:
        assert plan.num_shards <= 1


def test_one_byte_budget_means_one_source_per_shard():
    g = gnm_random_graph(40, 140, seed=5)
    dag = PreparedGraph(g).dag("degeneracy")
    width = (dag.max_out_degree + 63) // 64
    plan = plan_shards(dag.out_indptr, width, memory_budget_bytes=1)
    outdeg = np.diff(dag.out_indptr)
    for s in plan.shards:
        assert np.count_nonzero(outdeg[s.v_lo:s.v_hi]) <= 1


# -- count/list equality across budgets and fuzz families ------------------


@given(g=random_graphs(), k=st.integers(min_value=4, max_value=6))
@settings(**SETTINGS)
def test_sharded_matches_frontier_and_reference(g, k):
    expected = frontier_count_cliques(g, k)
    assert run_variant(g, k, "best-work", Tracker()).count == expected
    for budget in BUDGETS:
        got = sharded_count_cliques(
            g, k, memory_budget_bytes=budget, verify=True
        )
        assert got == expected, f"budget={budget}"


@given(case=family_cases(max_vertices=20), k=st.integers(min_value=4, max_value=5))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_sharded_matches_on_structured_families(case, k):
    g = build_family(case.family, case.params)
    expected = frontier_count_cliques(g, k)
    assert sharded_count_cliques(g, k, memory_budget_bytes=1) == expected
    assert sharded_count_cliques(g, k) == expected


@given(g=random_graphs(max_n=12), k=st.integers(min_value=4, max_value=5))
@settings(**SETTINGS)
def test_sharded_listing_is_identical_and_canonical(g, k):
    expected = frontier_list_cliques(g, k)
    for budget in (None, 1, 4096):
        got = sharded_list_cliques(g, k, memory_budget_bytes=budget)
        assert got == expected, f"budget={budget}"
    assert expected == sorted(tuple(sorted(c)) for c in expected)


@pytest.mark.parametrize("k", [1, 2, 3])
def test_small_k_closed_forms(k):
    g = gnm_random_graph(30, 90, seed=2)
    assert sharded_count_cliques(g, k, memory_budget_bytes=1) == (
        run_variant(g, k, "best-work", Tracker()).count
    )
    assert sharded_list_cliques(g, k, memory_budget_bytes=1) == (
        frontier_list_cliques(g, k)
    )


def test_unlimited_budget_is_the_identity_plan():
    """budget=None builds one shard whose block is the in-RAM table."""
    g = gnm_random_graph(50, 200, seed=9)
    ctx = PreparedGraph(g)
    dag = ctx.dag("degeneracy")
    tri = ctx.triangles("degeneracy")
    plan = plan_shards(dag.out_indptr, (dag.max_out_degree + 63) // 64)
    assert plan.num_shards == 1
    sharded = ShardedTables(dag, tri, plan)
    try:
        block = sharded.block(0)
        full = build_frontier_tables(dag, tri)
        assert np.array_equal(np.asarray(block.rows), full.rows)
        assert np.array_equal(np.asarray(block.rows_in), full.rows_in)
        assert np.array_equal(np.asarray(block.base), full.base)
    finally:
        sharded.close()


def test_process_fanout_matches_sequential():
    g = gnm_random_graph(80, 500, seed=13)
    for k in (4, 5):
        expected = frontier_count_cliques(g, k)
        got = sharded_count_cliques(
            g, k, memory_budget_bytes=2048, workers=2
        )
        assert got == expected
    assert expected > 0  # the fan-out actually counted something


def test_warm_context_memoizes_the_shard_piece():
    g = gnm_random_graph(60, 300, seed=21)
    ctx = PreparedGraph(g)
    first = ctx.sharded_tables("degeneracy", memory_budget_bytes=4096)
    again = ctx.sharded_tables("degeneracy", memory_budget_bytes=4096)
    other = ctx.sharded_tables("degeneracy", memory_budget_bytes=8192)
    assert first is again
    assert other is not first
    # A closed piece is rebuilt on the next request, not served dead.
    first.close()
    rebuilt = ctx.sharded_tables("degeneracy", memory_budget_bytes=4096)
    assert rebuilt is not first and not rebuilt.closed


# -- the acceptance property: tables >= 10x budget, window enforced --------


def test_counts_graph_ten_times_bigger_than_budget():
    g = gnm_random_graph(300, 2600, seed=17)
    ctx = PreparedGraph(g)
    dag = ctx.dag("degeneracy")
    tables = predict_table_bytes(dag.num_edges, dag.max_out_degree)
    budget = tables // 12
    assert tables >= 10 * budget > 0

    registry = MetricsRegistry()
    tracker = Tracker()
    tracker.attach_metrics(registry)
    got = sharded_count_cliques(
        g, 5, memory_budget_bytes=budget, prepared=ctx, tracker=tracker
    )
    assert got == frontier_count_cliques(g, 5)

    exported = registry.to_dict()
    resident_peak = exported["shard.bytes.resident_peak"]["value"]
    assert 0 < resident_peak <= budget
    assert exported["shard.count"]["value"] >= 10
    # Shards with no eligible slice are never built, so built bytes may
    # fall short of the full footprint but never exceed it.
    assert 0 < exported["shard.bytes.built"]["value"] <= tables
    # Nothing stays resident past the run's eviction discipline.
    assert ctx.sharded_tables(
        "degeneracy", memory_budget_bytes=budget
    ).resident_bytes() <= budget


# -- spill lifecycle -------------------------------------------------------


def _spilled_entries(root):
    return [e for e in os.listdir(root) if e.startswith("repro-shard-")]


def test_spill_cleanup_on_success(tmp_path):
    g = gnm_random_graph(40, 160, seed=3)
    got = sharded_count_cliques(
        g, 4, memory_budget_bytes=256, spill_root=str(tmp_path)
    )
    assert got == frontier_count_cliques(g, 4)
    assert _spilled_entries(tmp_path) == []


def test_spill_cleanup_on_error(tmp_path, monkeypatch):
    import repro.core.sharded as sharded_mod

    def boom(*args, **kwargs):
        raise RuntimeError("injected failure")

    monkeypatch.setattr(sharded_mod, "count_frontier_slice", boom)
    g = gnm_random_graph(40, 160, seed=3)
    with pytest.raises(RuntimeError, match="injected failure"):
        sharded_count_cliques(
            g, 4, memory_budget_bytes=256, spill_root=str(tmp_path)
        )
    assert _spilled_entries(tmp_path) == []


def test_spill_cleanup_on_keyboard_interrupt(tmp_path, monkeypatch):
    import repro.core.sharded as sharded_mod

    def interrupt(*args, **kwargs):
        raise KeyboardInterrupt()

    monkeypatch.setattr(sharded_mod, "count_frontier_slice", interrupt)
    g = gnm_random_graph(40, 160, seed=3)
    with pytest.raises(KeyboardInterrupt):
        sharded_count_cliques(
            g, 4, memory_budget_bytes=256, spill_root=str(tmp_path)
        )
    assert _spilled_entries(tmp_path) == []


# -- dispatch: the memory-aware resolve_engine leg -------------------------


def test_resolve_engine_memory_leg():
    g = gnm_random_graph(100, 700, seed=7)
    ctx = PreparedGraph(g)
    dag = ctx.dag("degeneracy")
    tables = predict_table_bytes(dag.num_edges, dag.max_out_degree)

    tight = resolve_engine(
        ctx, 5, "best-work", True, None, Tracker(),
        memory_budget_bytes=tables // 2,
    )
    assert tight == "sharded"
    assert "memory budget" in tight.reason and str(tables) in tight.reason

    roomy = resolve_engine(
        ctx, 5, "best-work", True, None, Tracker(),
        memory_budget_bytes=tables * 2,
    )
    assert roomy == "frontier"
    # Outside the frontier regime the memory leg never fires.
    assert resolve_engine(
        ctx, 3, "best-work", True, None, Tracker(), memory_budget_bytes=1
    ) == "reference"


def test_facade_dispatches_to_sharded_under_budget():
    g = gnm_random_graph(100, 700, seed=7)
    result = count_cliques(g, 5, memory_budget_bytes=1024)
    assert result.engine == "sharded"
    assert result.count == frontier_count_cliques(g, 5)
    roomy = count_cliques(g, 5, memory_budget_bytes=10**9)
    assert roomy.engine == "frontier"
    assert roomy.count == result.count


def test_facade_listing_upgrades_to_sharded():
    g = gnm_random_graph(60, 260, seed=11)
    expected = list_cliques(g, 4, engine="frontier")
    assert list_cliques(g, 4, engine="sharded") == expected
    assert (
        list_cliques(g, 4, engine="frontier", memory_budget_bytes=1)
        == expected
    )


# -- prepared-cache byte accounting ----------------------------------------


def test_prepared_cache_tracks_approx_bytes():
    cache = PreparedCache(maxsize=8)
    registry = MetricsRegistry()
    tracker = Tracker()
    tracker.attach_metrics(registry)
    g = gnm_random_graph(40, 150, seed=1)
    ctx = cache.get(g, tracker=tracker)
    assert ctx.approx_bytes() == 0  # nothing built yet
    frontier_count_cliques(g, 4, prepared=ctx)
    assert ctx.approx_bytes() > 0
    cache.get(g, tracker=tracker)
    assert (
        registry.to_dict()["prepared.graph.bytes"]["value"]
        == cache.total_bytes()
        == ctx.approx_bytes()
    )


def test_prepared_cache_evicts_over_byte_budget():
    cache = PreparedCache(maxsize=8, max_bytes=1)
    graphs = [gnm_random_graph(30, 100, seed=s) for s in range(3)]
    for g in graphs:
        ctx = cache.get(g)
        frontier_count_cliques(g, 4, prepared=ctx)
        cache.put(g, ctx)
    # The byte budget keeps at most one (over-budget) entry resident.
    assert cache.info()["size"] == 1
    assert cache.info()["approx_bytes"] == cache.total_bytes()


# -- service admission: over-memory ----------------------------------------


def test_admission_prices_and_rejects_over_memory():
    import asyncio

    from repro.service.admission import AdmissionController, estimate_query
    from repro.service.protocol import ServiceError

    n, m, s = 1000, 20000, 40
    tables = float(predict_table_bytes(m, s))
    budget = int(tables // 10)

    counted = estimate_query(
        "count", n, m, s, k=5, memory_budget_bytes=budget
    )
    assert counted.table_bytes == tables
    assert counted.resident_bytes == budget  # shardable: capped

    swept = estimate_query(
        "spectrum", n, m, s, k_max=6, memory_budget_bytes=budget
    )
    assert swept.resident_bytes == tables  # unshardable: uncapped

    found = estimate_query("find", n, m, s, k=5, memory_budget_bytes=budget)
    assert found.table_bytes == 0.0

    controller = AdmissionController(max_resident_bytes=budget)

    async def run():
        async with controller.admit(counted, "count"):
            assert controller.inflight_bytes == float(budget)
        assert controller.inflight_bytes == 0.0
        with pytest.raises(ServiceError) as exc_info:
            async with controller.admit(swept, "spectrum"):
                pass
        assert exc_info.value.code == "over-memory"
        assert exc_info.value.details["max_resident_bytes"] == budget

    asyncio.run(run())


def test_service_rejects_unshardable_query_over_memory():
    import asyncio

    from repro.service.daemon import CliqueService, ServiceClient
    from repro.service.protocol import ServiceError

    g = gnm_random_graph(60, 300, seed=7)
    us, vs = g.edge_array()
    edges = [[int(u), int(v)] for u, v in zip(us.tolist(), vs.tolist())]

    async def flow():
        service = CliqueService(memory_budget_bytes=1)
        client = ServiceClient(service)
        await client.register("g", edges=edges)
        # count is shardable: it streams under the budget and serves.
        ok = await client.count("g", k=4)
        with pytest.raises(ServiceError) as exc_info:
            await client.spectrum("g", k_max=5)
        await service.aclose()
        return ok, exc_info.value

    ok, rejection = asyncio.run(flow())
    assert ok["count"] == frontier_count_cliques(g, 4)
    assert rejection.code == "over-memory"
    assert rejection.details["max_resident_bytes"] == 1
