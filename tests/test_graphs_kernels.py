"""Unit tests for k-core / triangle kernelization."""

import numpy as np
import pytest

from repro import count_cliques
from repro.baselines import brute_force_count, brute_force_list
from repro.graphs import (
    empty_graph,
    from_edges,
    gnm_random_graph,
    kcore_kernel,
    plant_cliques,
    triangle_kernel,
)


class TestKCoreKernel:
    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_preserves_clique_count(self, k, small_random_graphs):
        for g in small_random_graphs:
            kern = kcore_kernel(g, k)
            assert count_cliques(kern.graph, k).count == brute_force_count(g, k)

    def test_shrinks_sparse_graph(self):
        base = gnm_random_graph(300, 450, seed=1)  # avg degree 3
        g, _ = plant_cliques(base, [8], seed=2)
        kern = kcore_kernel(g, 8)
        assert kern.graph.num_vertices < g.num_vertices

    def test_lift_maps_back(self):
        base = gnm_random_graph(100, 150, seed=3)
        g, planted = plant_cliques(base, [6], seed=4)
        kern = kcore_kernel(g, 6)
        cliques = [
            kern.lift(c)
            for c in brute_force_list(kern.graph, 6)
        ] if kern.graph.num_vertices <= 64 else []
        expected = tuple(sorted(planted[0].tolist()))
        assert expected in cliques

    def test_trivial_k_identity(self):
        g = gnm_random_graph(20, 50, seed=5)
        kern = kcore_kernel(g, 2)
        assert kern.graph is g

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kcore_kernel(empty_graph(3), 0)

    def test_empty_graph(self):
        kern = kcore_kernel(empty_graph(0), 5)
        assert kern.graph.num_vertices == 0


class TestTriangleKernel:
    @pytest.mark.parametrize("k", [4, 5, 6])
    def test_preserves_clique_count(self, k, small_random_graphs):
        for g in small_random_graphs:
            kern = triangle_kernel(g, k)
            assert count_cliques(kern.graph, k).count == brute_force_count(g, k)

    def test_stronger_than_kcore(self):
        # A graph that is a 4-core but nearly triangle-free shrinks under
        # the triangle filter only.
        from repro.graphs import hypercube_graph

        g = hypercube_graph(5)  # 5-regular, triangle-free
        kc = kcore_kernel(g, 5)
        tk = triangle_kernel(g, 5)
        assert kc.graph.num_vertices == 32  # 4-core keeps everything
        assert tk.graph.num_edges == 0  # no edge is in any triangle

    def test_planted_clique_survives(self):
        base = gnm_random_graph(200, 300, seed=6)
        g, planted = plant_cliques(base, [7], seed=7)
        kern = triangle_kernel(g, 7)
        kept = set(kern.labels.tolist())
        assert set(planted[0].tolist()) <= kept

    def test_k3_falls_back_to_core(self):
        g = gnm_random_graph(20, 60, seed=8)
        kern = triangle_kernel(g, 3)
        assert count_cliques(kern.graph, 3).count == brute_force_count(g, 3)
