"""Every example script must run to completion (deliverable b is live)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def example_files():
    return sorted(
        f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
    )


@pytest.mark.parametrize("script", example_files())
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{script} produced no output"


def test_at_least_three_examples():
    assert len(example_files()) >= 3
