"""Frontier engine: bit-identical counts and listings vs the reference.

The level-synchronous engine (``repro.core.frontier``) must agree with
the reference recursion on *everything* it claims to compute: counts
across all six Table-1 variants, canonical listings, the ``prune=False``
ablation, warm and cold prepared contexts, and with or without the
triangle-support kernelization. These are the acceptance properties of
the engine; the perf story lives in BENCH_baseline.json.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import count_cliques, list_cliques
from repro.baselines import brute_force_count
from repro.core import VARIANTS, run_variant
from repro.core.api import EngineDecision, resolve_engine
from repro.core.frontier import (
    build_frontier_tables,
    count_frontier_slice,
    frontier_count_cliques,
    frontier_list_cliques,
)
from repro.core.prepared import PreparedGraph
from repro.fuzz.strategies import random_graphs
from repro.graphs import complete_graph, from_edges, gnm_random_graph
from repro.obs import MetricsRegistry
from repro.pram.tracker import NULL_TRACKER, Tracker

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)



@given(g=random_graphs(), k=st.integers(min_value=4, max_value=6))
@settings(**SETTINGS)
def test_frontier_matches_every_variant_count(g, k):
    got = frontier_count_cliques(g, k)
    for variant in VARIANTS:
        assert run_variant(g, k, variant, Tracker()).count == got, variant


@given(g=random_graphs(), k=st.integers(min_value=1, max_value=6))
@settings(**SETTINGS)
def test_frontier_warm_cold_and_kernelized_counts(g, k):
    expected = brute_force_count(g, k)
    ctx = PreparedGraph(g)
    assert frontier_count_cliques(g, k, prepared=ctx) == expected  # cold
    assert frontier_count_cliques(g, k, prepared=ctx) == expected  # warm
    assert (
        count_cliques(g, k, engine="frontier", kernelize=True).count
        == expected
    )


@given(g=random_graphs(max_n=12), k=st.integers(min_value=4, max_value=5))
@settings(**SETTINGS)
def test_frontier_listing_is_canonical_warm_cold_kernelized(g, k):
    ctx = PreparedGraph(g)
    ref = list_cliques(g, k, prepared=ctx)
    assert frontier_list_cliques(g, k) == ref  # cold private context
    assert frontier_list_cliques(g, k, prepared=ctx) == ref  # warm
    assert (
        list_cliques(g, k, engine="frontier", kernelize=True, prepared=ctx)
        == ref
    )
    assert list_cliques(g, k, kernelize=True, prepared=ctx) == ref


@given(g=random_graphs(), k=st.integers(min_value=4, max_value=6))
@settings(**SETTINGS)
def test_prune_ablation_changes_nothing_but_work(g, k):
    assert frontier_count_cliques(g, k, prune=False) == frontier_count_cliques(
        g, k
    )


class TestTrivialSizes:
    def test_direct_answers_below_k4(self):
        g = gnm_random_graph(20, 60, seed=3)
        ref = {k: run_variant(g, k, "best-work", Tracker()).count for k in (1, 2, 3)}
        for k, expected in ref.items():
            assert frontier_count_cliques(g, k) == expected
            assert frontier_list_cliques(g, k) == list_cliques(g, k)

    def test_bad_k_rejected(self):
        g = complete_graph(5)
        with pytest.raises(ValueError):
            frontier_count_cliques(g, 0)


class TestSliceDecomposition:
    def test_slices_partition_the_count(self):
        # The process executor's contract: summing count_frontier_slice
        # over any partition of the eligible edges reproduces the total.
        g = gnm_random_graph(40, 220, seed=7)
        k = 5
        ctx = PreparedGraph(g)
        total = frontier_count_cliques(g, k, prepared=ctx)
        tables = ctx.frontier_tables("degeneracy")
        comms = ctx.communities("degeneracy")
        eligible = np.flatnonzero(comms.sizes >= (k - 2))
        for parts in (1, 2, 3, 7):
            pieces = np.array_split(eligible, parts)
            assert (
                sum(count_frontier_slice(tables, p, k - 2) for p in pieces)
                == total
            )

    def test_empty_slice_counts_zero(self):
        g = complete_graph(6)
        ctx = PreparedGraph(g)
        tables = ctx.frontier_tables("degeneracy")
        assert count_frontier_slice(tables, np.empty(0, dtype=np.int64), 2) == 0


class TestTables:
    def test_tables_are_frozen_and_shaped(self):
        g = gnm_random_graph(25, 90, seed=11)
        ctx = PreparedGraph(g)
        dag = ctx.dag("degeneracy")
        tri = ctx.triangles("degeneracy")
        tables = build_frontier_tables(dag, tri)
        width_words = (dag.max_out_degree + 63) // 64
        assert tables.rows.shape == (dag.num_edges, width_words)
        assert tables.rows_in.shape == (dag.num_edges, width_words)
        assert not tables.rows.flags.writeable
        assert not tables.rows_in.flags.writeable

    def test_prepared_context_memoizes_tables(self):
        g = gnm_random_graph(25, 90, seed=11)
        ctx = PreparedGraph(g)
        first = ctx.frontier_tables("degeneracy")
        assert ctx.frontier_tables("degeneracy") is first


class TestObservability:
    def test_frontier_metrics_emitted(self):
        g = complete_graph(12)
        registry = MetricsRegistry()
        tracker = Tracker()
        tracker.attach_metrics(registry)
        frontier_count_cliques(g, 5, tracker=tracker)
        data = registry.to_dict()
        assert data["frontier.rounds"]["value"] >= 1
        assert data["frontier.width"]["count"] >= 1
        assert data["frontier.peak_width"]["max"] >= 1

    def test_kernel_metrics_emitted(self):
        # A clique plus pendant noise: the kernel strictly shrinks, and
        # the shrink ratio lands in the registry.
        edges = [(i, j) for i in range(6) for j in range(i + 1, 6)]
        edges += [(5 + i, 5 + i + 1) for i in range(1, 8)]
        g = from_edges(np.asarray(edges, dtype=np.int64), num_vertices=14)
        registry = MetricsRegistry()
        tracker = Tracker()
        tracker.attach_metrics(registry)
        result = count_cliques(g, 4, kernelize=True, tracker=tracker)
        assert result.count == brute_force_count(g, 4)
        data = registry.to_dict()
        assert 0 < data["kernel.shrink_ratio"]["value"] < 1
        assert data["kernel.kept_vertices"]["value"] == 6


class TestDispatchMetadata:
    def test_auto_resolves_to_frontier_and_says_why(self):
        g = complete_graph(10)
        result = count_cliques(g, 4)
        assert result.engine == "frontier"
        assert result.engine_reason
        explicit = count_cliques(g, 4, engine="reference")
        assert explicit.engine == "reference"
        assert "explicitly requested" in explicit.engine_reason

    def test_engine_decision_is_a_string(self):
        ctx = PreparedGraph(complete_graph(8))
        decision = resolve_engine(ctx, 5, "best-work", True, None, NULL_TRACKER)
        assert isinstance(decision, EngineDecision)
        assert isinstance(decision, str)
        assert decision == "frontier"
        assert decision.reason
