"""Unit tests for the work/depth cost algebra."""

import math

import pytest

from repro.pram.cost import Cost, ZERO, par, par_for, seq


class TestCostConstruction:
    def test_default_is_zero(self):
        assert Cost() == ZERO
        assert ZERO.is_zero()

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            Cost(-1, 0)

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            Cost(0, -1)

    def test_frozen(self):
        c = Cost(1, 1)
        with pytest.raises(Exception):
            c.work = 5


class TestComposition:
    def test_sequential_adds_both(self):
        assert Cost(3, 2) + Cost(5, 4) == Cost(8, 6)

    def test_parallel_adds_work_maxes_depth(self):
        assert Cost(3, 2) | Cost(5, 4) == Cost(8, 4)

    def test_zero_is_identity_for_both(self):
        c = Cost(7, 3)
        assert c + ZERO == c
        assert c | ZERO == c

    def test_seq_and_par_varargs(self):
        costs = [Cost(1, 1), Cost(2, 2), Cost(3, 3)]
        assert seq(*costs) == Cost(6, 6)
        assert par(*costs) == Cost(6, 3)

    def test_parallel_is_commutative(self):
        a, b = Cost(2, 9), Cost(10, 1)
        assert (a | b) == (b | a)

    def test_scalar_multiplication(self):
        assert Cost(2, 3) * 4 == Cost(8, 12)
        assert 4 * Cost(2, 3) == Cost(8, 12)

    def test_negative_repeat_rejected(self):
        with pytest.raises(ValueError):
            Cost(1, 1) * -1

    def test_spread_keeps_depth(self):
        assert Cost(2, 3).spread(5) == Cost(10, 3)
        assert Cost(2, 3).spread(0) == ZERO

    def test_spread_negative_rejected(self):
        with pytest.raises(ValueError):
            Cost(1, 1).spread(-2)


class TestBrentTime:
    def test_one_processor_is_work_plus_depth(self):
        assert Cost(100, 10).time_on(1) == 110

    def test_time_decreases_with_processors(self):
        c = Cost(1000, 10)
        times = [c.time_on(p) for p in (1, 2, 4, 8, 64)]
        assert times == sorted(times, reverse=True)

    def test_depth_is_the_floor(self):
        c = Cost(1000, 10)
        assert c.time_on(10**9) == pytest.approx(10, rel=1e-3)

    def test_zero_processors_rejected(self):
        with pytest.raises(ValueError):
            Cost(1, 1).time_on(0)


class TestParFor:
    def test_empty_loop_is_free(self):
        assert par_for(0, Cost(5, 5)) == ZERO

    def test_work_scales_depth_does_not(self):
        c = par_for(1024, Cost(3, 2))
        assert c.work == 3 * 1024
        assert c.depth == 2 + math.ceil(math.log2(1025))

    def test_no_spawn_depth(self):
        c = par_for(1024, Cost(3, 2), spawn_depth=False)
        assert c.depth == 2

    def test_negative_trip_count_rejected(self):
        with pytest.raises(ValueError):
            par_for(-1, Cost(1, 1))
