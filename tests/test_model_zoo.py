"""The model zoo: SBM, Watts–Strogatz, lattice, configuration model.

Shape-invariant property tests (Hypothesis over seeded parameters),
seeded byte-identical replay, differential count checks against every
engine, the fuzz-family registration, and the bench presets.
"""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import brute_force_count
from repro.bench.datasets import ZOO_PRESETS, load_dataset, zoo_names
from repro.core import count_cliques
from repro.fuzz.strategies import FAMILIES, CaseSpec, edge_list
from repro.graphs import (
    configuration_model_graph,
    lattice_graph,
    sbm_graph,
    watts_strogatz_graph,
)

SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestSeededReplay:
    """Equal seeds ⇒ byte-identical edge lists (the _rng contract)."""

    def test_sbm_replay(self):
        a = sbm_graph([6, 5, 4], 0.7, 0.1, seed=9)
        b = sbm_graph([6, 5, 4], 0.7, 0.1, seed=9)
        c = sbm_graph([6, 5, 4], 0.7, 0.1, seed=10)
        assert edge_list(a) == edge_list(b)
        assert edge_list(a) != edge_list(c)

    def test_watts_strogatz_replay(self):
        a = watts_strogatz_graph(30, 4, 0.3, seed=9)
        b = watts_strogatz_graph(30, 4, 0.3, seed=9)
        assert edge_list(a) == edge_list(b)

    def test_configuration_replay(self):
        deg = [3, 3, 3, 2, 2, 2, 2, 1]
        a = configuration_model_graph(deg, seed=9)
        b = configuration_model_graph(deg, seed=9)
        assert edge_list(a) == edge_list(b)

    def test_generator_passthrough(self):
        # A Generator passed instead of an int is consumed in place:
        # hierarchical seeding draws two *different* graphs from one
        # parent stream, replayable from the parent seed alone.
        rng = np.random.default_rng(5)
        g1 = sbm_graph([5, 5], 0.8, 0.1, seed=rng)
        g2 = sbm_graph([5, 5], 0.8, 0.1, seed=rng)
        rng2 = np.random.default_rng(5)
        h1 = sbm_graph([5, 5], 0.8, 0.1, seed=rng2)
        h2 = sbm_graph([5, 5], 0.8, 0.1, seed=rng2)
        assert edge_list(g1) == edge_list(h1)
        assert edge_list(g2) == edge_list(h2)
        assert edge_list(g1) != edge_list(g2)


class TestSBM:
    @settings(**SETTINGS)
    @given(seed=seeds, p_in=st.floats(0.6, 0.95), p_out=st.floats(0.0, 0.2))
    def test_intra_block_denser_than_inter(self, seed, p_in, p_out):
        sizes = [8, 8, 8]
        g = sbm_graph(sizes, p_in, p_out, seed=seed)
        starts = np.concatenate([[0], np.cumsum(sizes)])
        block = np.repeat(np.arange(len(sizes)), sizes)
        us, vs = g.edge_array()
        same = int(np.sum(block[us] == block[vs]))
        cross = us.size - same
        intra_pairs = sum(s * (s - 1) // 2 for s in sizes)
        inter_pairs = (
            sum(sizes) * (sum(sizes) - 1) // 2 - intra_pairs
        )
        # Edge-probability ordering: realized intra density must beat
        # realized inter density whenever p_in - p_out is material.
        assert same / intra_pairs >= cross / max(inter_pairs, 1) - 0.05
        assert g.num_vertices == sum(sizes)
        del starts

    def test_extremes_give_union_of_cliques(self):
        g = sbm_graph([4, 5, 6], 1.0, 0.0, seed=0)
        # p_in=1, p_out=0: disjoint cliques of the block sizes.
        assert g.num_edges == 4 * 3 // 2 + 5 * 4 // 2 + 6 * 5 // 2
        assert count_cliques(g, 6).count == 1  # only the 6-block
        assert count_cliques(g, 7).count == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            sbm_graph([], 0.5, 0.1, seed=0)
        with pytest.raises(ValueError):
            sbm_graph([3, 0], 0.5, 0.1, seed=0)
        with pytest.raises(ValueError):
            sbm_graph([3, 3], 1.5, 0.1, seed=0)
        with pytest.raises(ValueError):
            sbm_graph([3, 3], 0.5, -0.1, seed=0)


class TestWattsStrogatz:
    @settings(**SETTINGS)
    @given(
        seed=seeds,
        n=st.integers(8, 40),
        half=st.integers(1, 3),
        p=st.floats(0.0, 1.0),
    )
    def test_edge_count_and_degree_bounds(self, seed, n, half, p):
        k_ring = 2 * half
        g = watts_strogatz_graph(n, k_ring, p, seed=seed)
        # Rewiring moves endpoints but never adds or removes edges.
        assert g.num_edges == n * k_ring // 2
        # Each vertex keeps its k/2 clockwise stubs: degree >= k/2.
        assert int(g.degrees.min()) >= half
        assert g.num_vertices == n

    def test_zero_rewire_is_ring_lattice(self):
        g = watts_strogatz_graph(12, 4, 0.0, seed=0)
        degs = g.degrees
        assert int(degs.min()) == 4 and int(degs.max()) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            watts_strogatz_graph(10, 3, 0.1, seed=0)  # odd k_ring
        with pytest.raises(ValueError):
            watts_strogatz_graph(4, 4, 0.1, seed=0)  # n <= k_ring
        with pytest.raises(ValueError):
            watts_strogatz_graph(10, 4, 1.5, seed=0)


class TestLattice:
    @settings(**SETTINGS)
    @given(
        dims=st.lists(st.integers(2, 4), min_size=1, max_size=3),
        periodic=st.booleans(),
    )
    def test_axis_aligned_lattice_is_triangle_free(self, dims, periodic):
        # Without diagonals the lattice is bipartite (parity of the
        # coordinate sum) when aperiodic; triangles need odd cycles. A
        # periodic wrap on an odd side can create odd cycles but never
        # length-3 ones for sides > 3, so k=3 stays empty whenever every
        # periodic side exceeds 3 — here sides <= 4, so restrict the
        # assertion to the aperiodic case plus even-periodic ones.
        if periodic and any(d % 2 for d in dims):
            return
        g = lattice_graph(dims, periodic=periodic)
        assert count_cliques(g, 3).count == 0

    @settings(**SETTINGS)
    @given(dims=st.lists(st.integers(2, 3), min_size=1, max_size=3))
    def test_king_graph_clique_free_above_2_to_dim(self, dims):
        # With diagonals, a maximal clique is one unit hypercube cell:
        # 2^d vertices. Cliques above k = 2^d cannot exist — for the
        # d-dimensional king graph this pins the issue's "clique-free
        # above k = 2·dim" bound (tight at d <= 2, conservative above).
        g = lattice_graph(dims, diagonals=True)
        d = len(dims)
        assert count_cliques(g, 2**d + 1).count == 0
        if all(s >= 2 for s in dims):
            assert count_cliques(g, 2**d).count > 0

    def test_grid_shape(self):
        g = lattice_graph([4, 5])
        assert g.num_vertices == 20
        assert g.num_edges == 3 * 5 + 4 * 4  # 4x5 grid: 31 edges

    def test_periodic_wrap(self):
        g = lattice_graph([4, 4], periodic=True)
        degs = g.degrees
        assert int(degs.min()) == 4 and int(degs.max()) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            lattice_graph([])
        with pytest.raises(ValueError):
            lattice_graph([0, 3])


class TestConfigurationModel:
    @settings(**SETTINGS)
    @given(seed=seeds, n=st.integers(6, 24), m_factor=st.integers(1, 3))
    def test_realizes_requested_degree_sequence(self, seed, n, m_factor):
        from repro.graphs import gnm_random_graph

        # Derive a graphical sequence from a realized G(n, m).
        proxy = gnm_random_graph(
            n, min(n * m_factor, n * (n - 1) // 2), seed=seed
        )
        degrees = [int(d) for d in proxy.degrees]
        g = configuration_model_graph(degrees, seed=seed)
        assert [int(d) for d in g.degrees] == degrees

    def test_non_graphical_rejected(self):
        with pytest.raises(ValueError, match="not graphical"):
            configuration_model_graph([3, 3, 1, 1], seed=0)

    def test_validation(self):
        with pytest.raises(ValueError):
            configuration_model_graph([3, 2, 2], seed=0)  # odd sum
        with pytest.raises(ValueError):
            configuration_model_graph([-1, 1], seed=0)
        with pytest.raises(ValueError):
            configuration_model_graph([5, 1, 1], seed=0)  # degree >= n


NEW_FAMILIES = ("sbm", "watts-strogatz", "lattice", "configuration")


class TestDifferentialCounts:
    """Reference vs frontier vs sharded on small instances of every
    new family — the acceptance criterion's cross-engine check."""

    @pytest.mark.parametrize("family", NEW_FAMILIES)
    @pytest.mark.parametrize("k", [3, 4])
    def test_engines_agree_with_brute_force(self, family, k):
        rng = np.random.default_rng(1234)
        for _ in range(3):
            params = FAMILIES[family].sample(rng, 14)
            g = FAMILIES[family].build(**params)
            expected = brute_force_count(g, k)
            assert count_cliques(g, k, engine="reference").count == expected
            assert count_cliques(g, k, engine="frontier").count == expected
            assert (
                count_cliques(
                    g, k, engine="sharded", memory_budget_bytes=1 << 14
                ).count
                == expected
            )


class TestFuzzRegistration:
    """Satellite: the four families fuzz from day one, replayable from
    one JSON line."""

    @pytest.mark.parametrize("family", NEW_FAMILIES)
    def test_family_registered_and_replayable(self, family):
        assert family in FAMILIES
        rng = np.random.default_rng(7)
        params = FAMILIES[family].sample(rng, 20)
        assert json.loads(json.dumps(params)) == params
        spec = CaseSpec(family=family, params=params)
        rebuilt = CaseSpec.from_json(spec.to_json())
        assert edge_list(spec.build()) == edge_list(rebuilt.build())


class TestZooPresets:
    def test_presets_registered_in_datasets(self):
        for name in ("sbm-community", "ws-smallworld", "lattice-mesh",
                     "config-powerlaw"):
            assert name in ZOO_PRESETS
        assert set(zoo_names()) == set(ZOO_PRESETS)

    @pytest.mark.parametrize("name", sorted(ZOO_PRESETS))
    def test_presets_load_at_multiple_scales(self, name):
        small = load_dataset(name, scale=0.5)
        full = load_dataset(name, scale=1.0)
        assert small.num_vertices >= 32
        assert full.num_edges > small.num_edges
        # Memoized: the same (name, scale) returns the same object.
        assert load_dataset(name, scale=0.5) is small

    def test_presets_have_planted_cliques(self):
        # Every preset plants >= 11-cliques so the k-sweep is non-trivial.
        from repro.core.existence import find_clique

        for name in zoo_names():
            g = load_dataset(name, scale=0.5)
            assert find_clique(g, 11) is not None, name
