"""Unit tests for triangle listing and edge-community construction."""

import numpy as np
import pytest

from repro.graphs import (
    complete_graph,
    empty_graph,
    from_edges,
    gnm_random_graph,
    hypercube_graph,
    orient_by_order,
)
from repro.triangles import (
    build_communities,
    count_triangles,
    list_triangles,
    per_edge_triangle_counts,
)
from tests.conftest import nx_graph


def ident_dag(g):
    return orient_by_order(g, np.arange(g.num_vertices))


class TestListTriangles:
    def test_single_triangle(self):
        g = from_edges([(0, 1), (1, 2), (0, 2)])
        tri = list_triangles(ident_dag(g))
        assert tri.shape == (1, 3)
        assert tuple(tri[0]) == (0, 1, 2)

    def test_rows_are_ordered(self):
        g = gnm_random_graph(40, 200, seed=1)
        tri = list_triangles(ident_dag(g))
        assert np.all(tri[:, 0] < tri[:, 1])
        assert np.all(tri[:, 1] < tri[:, 2])

    def test_each_triangle_once(self):
        g = gnm_random_graph(40, 200, seed=1)
        tri = list_triangles(ident_dag(g))
        rows = {tuple(r) for r in tri.tolist()}
        assert len(rows) == tri.shape[0]

    @pytest.mark.parametrize("seed", range(5))
    def test_count_matches_networkx(self, seed):
        import networkx as nx

        g = gnm_random_graph(50, 220, seed=seed)
        expected = sum(nx.triangles(nx_graph(g)).values()) // 3
        assert count_triangles(ident_dag(g)) == expected

    def test_count_invariant_under_order(self):
        g = gnm_random_graph(40, 180, seed=7)
        a = count_triangles(ident_dag(g))
        order = np.random.default_rng(0).permutation(40)
        b = count_triangles(orient_by_order(g, order))
        assert a == b

    def test_triangle_free(self):
        assert count_triangles(ident_dag(hypercube_graph(4))) == 0

    def test_complete_graph(self):
        # C(6,3) = 20 triangles.
        assert count_triangles(ident_dag(complete_graph(6))) == 20

    def test_empty(self):
        assert count_triangles(ident_dag(empty_graph(4))) == 0


class TestCommunities:
    def test_community_members_adjacent_to_both(self):
        g = gnm_random_graph(40, 200, seed=2)
        dag = ident_dag(g)
        comms = build_communities(dag)
        us, vs = dag.edge_endpoints()
        for eid in range(dag.num_edges):
            for w in comms.of(eid).tolist():
                assert dag.has_edge(int(us[eid]), w)
                assert dag.has_edge(w, int(vs[eid]))

    def test_members_sorted(self):
        g = gnm_random_graph(40, 200, seed=2)
        comms = build_communities(ident_dag(g))
        for eid in range(comms.dag.num_edges):
            c = comms.of(eid)
            assert np.all(np.diff(c) > 0)

    def test_total_members_equals_triangles(self):
        g = gnm_random_graph(40, 200, seed=3)
        dag = ident_dag(g)
        assert build_communities(dag).num_triangles == count_triangles(dag)

    def test_matches_direct_intersection(self):
        g = gnm_random_graph(30, 140, seed=4)
        dag = ident_dag(g)
        comms = build_communities(dag)
        us, vs = dag.edge_endpoints()
        for eid in range(dag.num_edges):
            direct = dag.community(int(us[eid]), int(vs[eid]))
            assert np.array_equal(comms.of(eid), direct)

    def test_of_pair_missing_edge(self):
        g = from_edges([(0, 1), (1, 2), (0, 2)])
        comms = build_communities(ident_dag(g))
        assert comms.of_pair(0, 3 % 3) .size == 0  # (0,0) is not an edge

    def test_max_size_gamma(self):
        comms = build_communities(ident_dag(complete_graph(6)))
        # Edge (0,5) has community {1,2,3,4}.
        assert comms.max_size == 4

    def test_sizes_matches_per_edge_counts(self):
        g = gnm_random_graph(35, 160, seed=5)
        dag = ident_dag(g)
        comms = build_communities(dag)
        counts = per_edge_triangle_counts(dag)
        assert np.array_equal(comms.sizes, counts)

    def test_precomputed_triangles_accepted(self):
        g = gnm_random_graph(35, 160, seed=6)
        dag = ident_dag(g)
        tri = list_triangles(dag)
        a = build_communities(dag, triangles=tri)
        b = build_communities(dag)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.members, b.members)

    def test_empty_graph(self):
        comms = build_communities(ident_dag(empty_graph(5)))
        assert comms.num_triangles == 0
        assert comms.max_size == 0
