"""The clique query service: daemon, coalescing, admission, transport.

Most tests drive the in-process :class:`~repro.service.ServiceClient`
(the full request path minus sockets); the transport tests run a real
``asyncio.start_server`` daemon on an ephemeral port. Each test owns its
event loop via ``asyncio.run`` — no async test plugin needed.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core.api import count_cliques, list_cliques
from repro.core.existence import clique_spectrum
from repro.graphs import gnm_random_graph
from repro.service import (
    AdmissionController,
    CliqueService,
    QueryClient,
    QueryEstimate,
    ServiceClient,
    ServiceError,
    estimate_query,
)

EDGES = [[0, 1], [0, 2], [1, 2], [1, 3], [2, 3], [3, 4], [2, 4]]


def run(coro):
    return asyncio.run(coro)


async def _service(**kwargs):
    svc = CliqueService(**kwargs)
    return svc, ServiceClient(svc)


class TestEndpoints:
    def test_register_and_count_matches_library(self):
        async def flow():
            svc, cl = await _service()
            info = await cl.register("g", edges=EDGES)
            assert info["n"] == 5 and info["m"] == len(EDGES)
            result = await cl.count("g", k=3)
            await svc.aclose()
            return result

        result = run(flow())
        graph = gnm_from_edges()
        assert result["count"] == count_cliques(graph, 3).count
        assert result["version"] == 0
        assert result["coalesced"] is False

    def test_list_find_spectrum(self):
        async def flow():
            svc, cl = await _service()
            await cl.register("g", edges=EDGES)
            listed = await cl.list_cliques("g", k=3)
            limited = await cl.list_cliques("g", k=3, limit=1)
            found = await cl.find("g", k=4)
            spectrum = await cl.spectrum("g")
            await svc.aclose()
            return listed, limited, found, spectrum

        listed, limited, found, spectrum = run(flow())
        graph = gnm_from_edges()
        oracle = [list(c) for c in list_cliques(graph, 3)]
        assert listed["cliques"] == oracle
        assert not listed["truncated"]
        assert limited["truncated"] and len(limited["cliques"]) == 1
        assert limited["count"] == len(oracle)  # limit trims, count stays
        assert found["found"] is False and found["witness"] is None
        oracle_spec = clique_spectrum(graph)
        assert {int(k): v for k, v in spectrum["spectrum"].items()} == (
            oracle_spec
        )

    def test_register_conflicts_and_unknown_graph(self):
        async def flow():
            svc, cl = await _service()
            await cl.register("g", edges=EDGES)
            with pytest.raises(ServiceError) as dup:
                await cl.register("g", edges=EDGES)
            with pytest.raises(ServiceError) as unknown:
                await cl.count("nope", k=3)
            gone = await cl.request("unregister", name="g")
            with pytest.raises(ServiceError) as after:
                await cl.count("g", k=3)
            await svc.aclose()
            return dup.value, unknown.value, gone, after.value

        dup, unknown, gone, after = run(flow())
        assert dup.code == "graph-exists"
        assert unknown.code == "unknown-graph"
        assert gone["removed"] is True
        assert after.code == "unknown-graph"

    def test_bad_requests(self):
        async def flow():
            svc, cl = await _service()
            await cl.register("g", edges=EDGES)
            errors = {}
            for name, req in {
                "no-op": {},
                "bad-op": {"op": "frobnicate"},
                "bad-k": {"op": "count", "graph": "g", "k": "three"},
                "neg-k": {"op": "count", "graph": "g", "k": 0},
                "bad-variant": {
                    "op": "count", "graph": "g", "k": 3, "variant": "fastest",
                },
                "bad-batch": {
                    "op": "mutate", "graph": "g", "mutation": "insert",
                    "batch": ["oops"],
                },
            }.items():
                response = await svc.handle(req)
                assert response["ok"] is False
                errors[name] = response["error"]["code"]
            await svc.aclose()
            return errors

        errors = run(flow())
        assert errors["no-op"] == "bad-request"
        assert errors["bad-op"] == "unknown-op"
        assert errors["bad-k"] == "bad-request"
        assert errors["neg-k"] == "bad-request"
        assert errors["bad-variant"] == "bad-request"
        assert errors["bad-batch"] == "bad-request"

    def test_stats_and_ping(self):
        async def flow():
            svc, cl = await _service()
            await cl.register("g", edges=EDGES)
            await cl.count("g", k=3)
            pong = await cl.request("ping")
            stats = await cl.stats()
            await svc.aclose()
            return pong, stats

        pong, stats = run(flow())
        assert pong["pong"] is True
        assert stats["service"]["service.engine_runs"] == 1.0
        assert stats["service"]["service.op.count"] == 1.0
        assert stats["admission"]["inflight_queries"] == 0
        assert stats["graphs"][0]["name"] == "g"


class TestCoalescing:
    def test_fifty_identical_queries_one_engine_run(self):
        async def flow():
            svc, cl = await _service()
            await cl.register("g", edges=EDGES)
            results = await asyncio.gather(
                *[cl.count("g", k=3) for _ in range(50)]
            )
            stats = await cl.stats()
            await svc.aclose()
            return results, stats["service"]

        results, counters = run(flow())
        expected = count_cliques(gnm_from_edges(), 3).count
        assert [r["count"] for r in results] == [expected] * 50
        assert counters["service.engine_runs"] == 1.0
        assert counters["service.coalesced"] >= 49.0
        assert sum(1 for r in results if not r["coalesced"]) == 1

    def test_different_queries_do_not_coalesce(self):
        async def flow():
            svc, cl = await _service()
            await cl.register("g", edges=EDGES)
            await asyncio.gather(
                cl.count("g", k=3), cl.count("g", k=4), cl.find("g", k=3)
            )
            stats = await cl.stats()
            await svc.aclose()
            return stats["service"]

        counters = run(flow())
        assert counters["service.engine_runs"] == 3.0
        assert counters.get("service.coalesced", 0.0) == 0.0

    def test_coalesced_error_fans_out_and_flight_clears(self):
        async def flow():
            svc, cl = await _service(max_query_work=1e-9)
            await cl.register("g", edges=EDGES)
            results = await asyncio.gather(
                *[cl.count("g", k=3) for _ in range(5)],
                return_exceptions=True,
            )
            assert svc._flights == {}  # failed flight was popped
            await svc.aclose()
            return results

        results = run(flow())
        assert all(isinstance(r, ServiceError) for r in results)
        assert all(r.code == "over-budget" for r in results)


class TestAdmission:
    def test_over_budget_rejection_carries_estimate(self):
        async def flow():
            svc, cl = await _service(max_query_work=1.0)
            await cl.register("g", edges=EDGES)
            with pytest.raises(ServiceError) as exc:
                await cl.count("g", k=3)
            stats = await cl.stats()
            await svc.aclose()
            return exc.value, stats["service"]

        err, counters = run(flow())
        assert err.code == "over-budget"
        assert err.details["predicted_work"] > 1.0
        assert err.details["max_query_work"] == 1.0
        assert "formula" in err.details
        assert counters["service.rejected"] == 1.0
        assert counters.get("service.engine_runs", 0.0) == 0.0

    def test_cheap_query_admitted_under_budget(self):
        async def flow():
            svc, cl = await _service(max_query_work=1e12)
            await cl.register("g", edges=EDGES)
            result = await cl.count("g", k=3)
            await svc.aclose()
            return result

        result = run(flow())
        assert result["count"] == count_cliques(gnm_from_edges(), 3).count
        assert 0 < result["predicted_work"] < 1e12

    def test_inflight_budget_queues_then_admits(self):
        async def flow():
            ctrl = AdmissionController(
                max_inflight_work=10.0, queue_limit=4
            )
            big = QueryEstimate(work=8.0, depth=1.0, formula="t")
            small = QueryEstimate(work=5.0, depth=1.0, formula="t")
            release = asyncio.Event()
            order = []

            async def holder():
                async with ctrl.admit(big, "holder"):
                    order.append("holder-in")
                    await release.wait()
                order.append("holder-out")

            async def waiter():
                async with ctrl.admit(small, "waiter"):
                    order.append("waiter-in")

            h = asyncio.ensure_future(holder())
            await asyncio.sleep(0)
            assert ctrl.inflight_work == 8.0
            w = asyncio.ensure_future(waiter())
            await asyncio.sleep(0.01)
            assert ctrl.queued == 1  # 8 + 5 > 10: waiter parked
            release.set()
            await asyncio.gather(h, w)
            assert order == ["holder-in", "holder-out", "waiter-in"]
            assert ctrl.inflight_work == 0.0 and ctrl.queued == 0

        run(flow())

    def test_queue_full_rejects(self):
        async def flow():
            ctrl = AdmissionController(max_inflight_work=10.0, queue_limit=0)
            est = QueryEstimate(work=8.0, depth=1.0, formula="t")
            release = asyncio.Event()

            async def holder():
                async with ctrl.admit(est, "holder"):
                    await release.wait()

            h = asyncio.ensure_future(holder())
            await asyncio.sleep(0)
            with pytest.raises(ServiceError) as exc:
                async with ctrl.admit(est, "second"):
                    pass
            release.set()
            await h
            return exc.value

        err = run(flow())
        assert err.code == "queue-full"
        assert err.details["predicted_work"] == 8.0

    def test_oversized_query_admitted_on_empty_pool(self):
        """A query above the global budget must not deadlock when alone."""

        async def flow():
            ctrl = AdmissionController(max_inflight_work=1.0)
            est = QueryEstimate(work=50.0, depth=1.0, formula="t")
            async with ctrl.admit(est, "solo"):
                assert ctrl.inflight_queries == 1
            assert ctrl.inflight_work == 0.0

        run(flow())

    def test_estimate_query_shapes(self):
        cheap = estimate_query("count", n=100, m=400, degeneracy=6, k=2)
        assert cheap.work == 500.0
        impossible = estimate_query("count", n=100, m=400, degeneracy=6, k=9)
        assert "no witness" in impossible.formula
        cold = estimate_query("count", n=100, m=400, degeneracy=6, k=4)
        warm = estimate_query(
            "count", n=100, m=400, degeneracy=6, k=4, warm=True
        )
        assert warm.work < cold.work  # warmth waives the m·s prep term
        tight = estimate_query(
            "count", n=100, m=400, degeneracy=6, gamma=3, k=4
        )
        assert tight.work <= cold.work  # γ ≤ s tightens the branch base
        spectrum = estimate_query("spectrum", n=100, m=400, degeneracy=6)
        assert spectrum.work > cold.work
        with pytest.raises(ValueError):
            estimate_query("count", n=10, m=20, degeneracy=3)


class TestMutationRaces:
    def test_mutation_racing_queries_keeps_versions_consistent(self):
        async def flow():
            svc, cl = await _service()
            await cl.register("g", edges=EDGES)
            before = await cl.count("g", k=4)
            mixed = await asyncio.gather(
                *[cl.count("g", k=4) for _ in range(8)],
                cl.mutate("g", "insert", [[0, 3]]),
                *[cl.count("g", k=4) for _ in range(8)],
            )
            after = await cl.count("g", k=4)
            stats = await cl.stats()
            await svc.aclose()
            counts = [r for r in mixed if "mutation" not in r and "k" in r]
            return before, counts, after, stats["service"]

        before, counts, after, counters = run(flow())
        g0 = gnm_from_edges()
        g1 = gnm_from_edges(extra=[[0, 3]])
        c0 = count_cliques(g0, 4).count
        c1 = count_cliques(g1, 4).count
        assert c0 != c1  # the mutation closes a 4-clique
        assert before["count"] == c0 and before["version"] == 0
        assert after["count"] == c1 and after["version"] == 1
        # Every racing query got the count of the snapshot its version
        # token names — the versioned coalescing key never mixed them.
        by_version = {0: c0, 1: c1}
        for r in counts:
            assert r["count"] == by_version[r["version"]]
        assert counters["service.mutations"] == 1.0

    def test_mutations_are_serialized_per_graph(self):
        async def flow():
            svc, cl = await _service()
            await cl.register("g", edges=EDGES)
            results = await asyncio.gather(
                cl.mutate("g", "insert", [[0, 3]]),
                cl.mutate("g", "insert", [[0, 4]]),
                cl.mutate("g", "delete", [[0, 1]]),
            )
            info = await cl.request("graphs")
            await svc.aclose()
            return results, info

        results, info = run(flow())
        assert sorted(r["version"] for r in results) == [1, 2, 3]
        assert info["graphs"][0]["version"] == 3
        assert info["graphs"][0]["m"] == len(EDGES) + 2 - 1

    def test_mutation_error_surfaces(self):
        async def flow():
            svc, cl = await _service()
            await cl.register("g", edges=EDGES)
            with pytest.raises(ServiceError) as exc:
                await cl.mutate("g", "insert", [[0, 1]])  # already present
            await svc.aclose()
            return exc.value

        err = run(flow())
        assert err.code == "mutation-error"
        assert "existing edge" in err.message


class TestTransport:
    def test_tcp_roundtrip_with_blocking_client(self):
        async def flow():
            svc = CliqueService()
            host, port = await svc.start("127.0.0.1", 0)
            loop = asyncio.get_event_loop()

            def client_session():
                with QueryClient(host, port, timeout=10.0) as client:
                    client.ping()
                    client.register("g", edges=EDGES)
                    out = {
                        "count": client.count("g", k=3),
                        "graphs": client.graphs(),
                        "stats": client.stats(),
                    }
                    try:
                        client.count("missing", k=3)
                    except ServiceError as exc:
                        out["err"] = exc.code
                    return out

            out = await loop.run_in_executor(None, client_session)
            await svc.aclose()
            return out

        out = run(flow())
        expected = count_cliques(gnm_from_edges(), 3).count
        assert out["count"]["count"] == expected
        assert out["graphs"]["graphs"][0]["name"] == "g"
        assert out["err"] == "unknown-graph"
        assert out["stats"]["service"]["service.requests"] >= 5

    def test_pipelined_requests_one_connection(self):
        async def flow():
            svc = CliqueService()
            svc.registry.register("g", edges=EDGES)
            host, port = await svc.start("127.0.0.1", 0)
            reader, writer = await asyncio.open_connection(host, port)
            # Fire many requests without reading; responses may arrive
            # in any order, matched back by id.
            n = 12
            for i in range(n):
                writer.write(
                    (
                        '{"op": "count", "graph": "g", "k": 3, "id": %d}\n'
                        % i
                    ).encode()
                )
            await writer.drain()
            import json

            got = {}
            for _ in range(n):
                line = await reader.readline()
                response = json.loads(line)
                got[response["id"]] = response
            writer.close()
            await svc.aclose()
            return got

        got = run(flow())
        expected = count_cliques(gnm_from_edges(), 3).count
        assert sorted(got) == list(range(12))
        assert all(r["ok"] and r["result"]["count"] == expected
                   for r in got.values())

    def test_garbage_line_gets_protocol_error(self):
        async def flow():
            svc = CliqueService()
            host, port = await svc.start("127.0.0.1", 0)
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"this is not json\n")
            writer.write(b'[1, 2, 3]\n')
            await writer.drain()
            import json

            first = json.loads(await reader.readline())
            second = json.loads(await reader.readline())
            writer.close()
            await svc.aclose()
            return first, second

        first, second = run(flow())
        assert first["ok"] is False and first["error"]["code"] == "protocol"
        assert second["ok"] is False and second["error"]["code"] == "protocol"

    def test_shutdown_request_stops_run_loop(self):
        async def flow():
            svc = CliqueService()
            started = asyncio.Event()
            bound = {}

            def ready(host, port):
                bound["addr"] = (host, port)
                started.set()

            server = asyncio.ensure_future(svc.run("127.0.0.1", 0, ready))
            await started.wait()
            host, port = bound["addr"]
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b'{"op": "shutdown", "id": 1}\n')
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await asyncio.wait_for(server, timeout=10.0)
            return line

        line = run(flow())
        assert b'"stopping":true' in line.replace(b" ", b"")


def gnm_from_edges(extra=()):
    """The test graph as a CSRGraph (library-oracle side)."""
    from repro.graphs import from_edges

    return from_edges([tuple(e) for e in EDGES] + [tuple(e) for e in extra])


class TestThreadedClients:
    def test_many_threads_hammer_tcp(self):
        """Blocking clients on real threads against one daemon."""

        from concurrent.futures import ThreadPoolExecutor

        async def flow():
            svc = CliqueService()
            svc.registry.register("g", edges=EDGES)
            host, port = await svc.start("127.0.0.1", 0)
            loop = asyncio.get_event_loop()
            barrier = threading.Barrier(8)

            def session(i):
                barrier.wait()
                with QueryClient(host, port, timeout=10.0) as client:
                    return [
                        client.count("g", k=3)["count"] for _ in range(5)
                    ]

            # A dedicated pool: the loop's default executor may have
            # fewer than 8 threads, which would starve the barrier.
            with ThreadPoolExecutor(max_workers=8) as pool:
                results = await asyncio.gather(
                    *[loop.run_in_executor(pool, session, i) for i in range(8)]
                )
            await svc.aclose()
            return results

        results = run(flow())
        expected = count_cliques(gnm_from_edges(), 3).count
        assert all(c == expected for batch in results for c in batch)
