"""Figure 7 — runtimes on the Chebyshev4 graph, k = 6..10.

The paper plots 72-thread wall time of c3List vs ArbCount vs kClist on
Chebyshev4. We regenerate the same series on the stand-in: wall time
(sequential Python), Brent-simulated T_72, and tracked work. Expected
shape (paper §B.3): c3List overtakes both baselines as k grows; this is
the graph with the most triangles per edge, where the advantage shows in
the search term.
"""

from __future__ import annotations

import pytest

from repro.bench import load_dataset, run_experiment

KS = [6, 7, 8, 9, 10]
ALGOS = ["c3list", "kclist", "arbcount"]


@pytest.mark.parametrize("k", KS)
@pytest.mark.parametrize("algo", ALGOS)
def test_fig7_cell(benchmark, k, algo, collector):
    g = load_dataset("chebyshev4")
    m = run_experiment(g, k, algo, repeats=1, graph_name="chebyshev4")
    benchmark.pedantic(
        lambda: run_experiment(g, k, algo, repeats=1, graph_name="chebyshev4"),
        rounds=1,
        iterations=1,
    )
    collector.add("fig7", m)
    assert m.count > 0  # the k-sweep stays non-trivial on this graph
