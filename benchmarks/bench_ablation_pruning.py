"""A2 — ablation of the relevant-pair pruning criterion (§2).

The paper's headline mechanism is rejecting pairs with fewer than c−2
candidates ordered between them. Running Algorithm 1 with the criterion
disabled isolates its effect: identical counts, strictly fewer probes and
less search work with pruning on — and the saving must grow with k
(the Θ((1/(1−k/s))^k) factor of §1.3).
"""

from __future__ import annotations

import pytest

from repro.bench import load_dataset
from repro.bench.reporting import format_table
from repro.core import run_variant
from repro.pram.tracker import Tracker

GRAPH = "chebyshev4"
KS = [6, 8, 10]


@pytest.mark.parametrize("k", KS)
def test_pruning_ablation(benchmark, k, collector):
    g = load_dataset(GRAPH)

    def run():
        out = {}
        for prune in (True, False):
            tr = Tracker()
            res = run_variant(g, k, "best-work", tr, prune=prune)
            out[prune] = (res.count, res.stats.probes, tr.phases["search"].work)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    assert out[True][0] == out[False][0], "pruning must not change the count"
    assert out[True][1] <= out[False][1]
    assert out[True][2] <= out[False][2]

    collector.add_text(
        f"ablation-pruning/{GRAPH} k={k}",
        format_table(
            ["pruning", "count", "pair probes", "search work"],
            [
                ["on", out[True][0], out[True][1], f"{out[True][2]:.4g}"],
                ["off", out[False][0], out[False][1], f"{out[False][2]:.4g}"],
                [
                    "saving",
                    "-",
                    f"{out[False][1] / max(out[True][1], 1):.2f}x",
                    f"{out[False][2] / max(out[True][2], 1):.2f}x",
                ],
            ],
        ),
    )


def test_pruning_gain_grows_with_k(collector):
    g = load_dataset(GRAPH)
    gains = []
    for k in KS:
        probes = {}
        for prune in (True, False):
            res = run_variant(g, k, "best-work", Tracker(), prune=prune)
            probes[prune] = res.stats.probes
        gains.append(probes[False] / max(probes[True], 1))
    collector.add_text(
        "ablation-pruning/gain-vs-k",
        format_table(["k", "probe saving"], [[k, f"{s:.2f}x"] for k, s in zip(KS, gains)]),
    )
    assert gains[-1] > gains[0]  # saving grows with clique size
