"""Table 1 — work/depth bounds: measured cost vs the closed-form formulas.

Table 1 is a theory table; we validate it empirically on instances where
the parameters (m, n, s, σ, k) are known: the tracked work of each
variant must stay within a modest constant factor of its formula, and the
*ordering* of the formulas must predict the ordering of the measured
search work (best-work ≤ best-depth; cd-best-work beats best-work when
σ ≪ s; c3List's k-dependent factor beats kClist's).
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    BoundInputs,
    all_work_bounds,
    work_best,
    work_best_depth,
    work_kclist,
)
from repro.bench.harness import ALGORITHMS
from repro.bench.reporting import format_table
from repro.graphs import gnm_random_graph, plant_cliques
from repro.orders import community_degeneracy, degeneracy_order
from repro.pram.tracker import Tracker


@pytest.fixture(scope="module")
def instance():
    base = gnm_random_graph(400, 2400, seed=31)
    g, _ = plant_cliques(base, [12, 11, 10], seed=32)
    s = degeneracy_order(g).degeneracy
    sigma = community_degeneracy(g)
    return g, s, sigma


VARIANT_TO_BOUND = {
    "c3list": "best-work",
    "c3list-approx": "best-depth",
    "c3list-hybrid": "hybrid",
    "c3list-cd": "cd-best-work",
    "c3list-cd-approx": "cd-best-depth",
    "kclist": "kclist",
    "arbcount": "arbcount",
    "chiba-nishizeki": "chiba-nishizeki",
}


@pytest.mark.parametrize("k", [6, 8])
def test_table1_measured_vs_formula(benchmark, instance, k, collector):
    g, s, sigma = instance
    params = BoundInputs(
        n=g.num_vertices, m=g.num_edges, k=k, s=s, sigma=sigma, eps=0.5
    )
    bounds = all_work_bounds(params)

    def run_all():
        rows = {}
        for algo, bound_name in VARIANT_TO_BOUND.items():
            tr = Tracker()
            res = ALGORITHMS[algo](g, k, tr)
            rows[algo] = (res.count, tr.work, bounds[bound_name])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    counts = {r[0] for r in rows.values()}
    assert len(counts) == 1, "all variants must agree on the count"

    table = format_table(
        ["algorithm", "measured work", "Table-1 bound", "measured/bound"],
        [
            [a, f"{w:.3g}", f"{b:.3g}", f"{w / b:.4f}"]
            for a, (_, w, b) in sorted(rows.items())
        ],
    )
    collector.add_text(f"table1/k={k} (n={g.num_vertices}, s={s}, sigma={sigma})", table)

    # Measured work never exceeds the bound's value (the O-constant here
    # is generous: the formulas omit constants, we just require sanity).
    for algo, (_, w, b) in rows.items():
        assert w <= 50 * b + 1e6, algo

    # The formulas' direction: our best-work <= best-depth work and both
    # below kClist's bound at this k/s ratio.
    assert work_best(params) <= work_best_depth(params)
    assert work_best(params) < work_kclist(params)
