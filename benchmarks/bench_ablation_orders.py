"""A1 — ablation over graph orientations and edge orders (§4).

DESIGN.md calls out the paper's central design choices: which vertex
order to orient with (exact vs approximate degeneracy) and which edge
order to peel with (exact greedy vs Algorithm 4). This bench quantifies
the tradeoff on one dataset: γ / candidate-set sizes, preprocessing
work/depth, and total cost of the resulting clique search.
Expected shape: approximate orders cut depth by orders of magnitude while
inflating γ (and hence search work) by a bounded constant factor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import load_dataset
from repro.bench.reporting import format_table
from repro.graphs import orient_by_order
from repro.orders import (
    approx_community_order,
    approx_degeneracy_order,
    candidate_sets_from_rank,
    community_degeneracy_order,
    degeneracy_order,
)
from repro.pram.tracker import Tracker
from repro.triangles import build_communities

GRAPH = "ca-dblp-2012"


def test_vertex_order_ablation(benchmark, collector):
    g = load_dataset(GRAPH)

    def run():
        rows = []
        for name, fn in [
            ("exact-degeneracy", lambda tr: degeneracy_order(g, tracker=tr).order),
            (
                "approx-degeneracy(eps=.5)",
                lambda tr: approx_degeneracy_order(g, eps=0.5, tracker=tr).order,
            ),
            (
                "approx-degeneracy(eps=.1)",
                lambda tr: approx_degeneracy_order(g, eps=0.1, tracker=tr).order,
            ),
            ("vertex-id", lambda tr: np.arange(g.num_vertices)),
        ]:
            tr = Tracker()
            order = fn(tr)
            dag = orient_by_order(g, order)
            comms = build_communities(dag)
            rows.append(
                [
                    name,
                    dag.max_out_degree,
                    comms.max_size,
                    f"{tr.work:.3g}",
                    f"{tr.depth:.3g}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    collector.add_text(
        f"ablation-orders/vertex ({GRAPH})",
        format_table(["order", "s~ (max outdeg)", "gamma", "prep work", "prep depth"], rows),
    )
    by_name = {r[0]: r for r in rows}
    s_exact = by_name["exact-degeneracy"][1]
    s_approx = by_name["approx-degeneracy(eps=.5)"][1]
    assert s_exact <= s_approx <= 3 * s_exact  # (2+eps) guarantee
    assert float(by_name["approx-degeneracy(eps=.5)"][4]) < float(
        by_name["exact-degeneracy"][4]
    )


def test_edge_order_ablation(benchmark, collector):
    g = load_dataset(GRAPH)

    def run():
        rows = []
        for name, fn in [
            ("exact-greedy", lambda tr: community_degeneracy_order(g, tracker=tr)),
            (
                "algorithm4(eps=.5)",
                lambda tr: approx_community_order(g, eps=0.5, tracker=tr),
            ),
            (
                "algorithm4(eps=2)",
                lambda tr: approx_community_order(g, eps=2.0, tracker=tr),
            ),
        ]:
            tr = Tracker()
            res = fn(tr)
            indptr, _ = candidate_sets_from_rank(g, res.edge_rank)
            max_cand = int(np.diff(indptr).max(initial=0))
            rows.append(
                [name, res.sigma, max_cand, res.num_rounds, f"{tr.depth:.3g}"]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    collector.add_text(
        f"ablation-orders/edge ({GRAPH})",
        format_table(
            ["order", "sigma(cert)", "max candidate set", "rounds", "prep depth"], rows
        ),
    )
    exact = rows[0]
    approx = rows[1]
    assert approx[2] <= 3.5 * max(exact[1], 1)  # Lemma 4.4
    assert approx[3] < exact[3]  # far fewer rounds than m


def test_ordering_heuristics_ablation(benchmark, collector):
    """Related-work [36] heuristics vs the degeneracy orders."""
    from repro.orders import degree_order, fill_order, random_order, triangle_order

    g = load_dataset(GRAPH)

    def run():
        rows = []
        for name, order_fn in [
            ("degeneracy", lambda: degeneracy_order(g).order),
            ("degree", lambda: degree_order(g)),
            ("triangle", lambda: triangle_order(g)),
            ("fill (core+degree)", lambda: fill_order(g)),
            ("random", lambda: random_order(g, seed=1)),
        ]:
            dag = orient_by_order(g, order_fn())
            comms = build_communities(dag)
            rows.append([name, dag.max_out_degree, comms.max_size])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    collector.add_text(
        f"ablation-orders/heuristics ({GRAPH})",
        format_table(["order", "s~ (max outdeg)", "gamma"], rows),
    )
    by = {r[0]: r for r in rows}
    # The exact degeneracy order minimizes the max out-degree.
    assert all(by["degeneracy"][1] <= r[1] for r in rows)
