"""S1 — simulated strong scaling (the '72 threads' dimension).

The paper reports all runtimes at 72 threads. Our substrate records exact
work/depth, so we regenerate the implied scaling behaviour: Brent
T_p = W/p + D for p = 1..72, plus the finer greedy-schedule simulation of
the outer edge loop (which exposes load imbalance that Brent hides).
Expected shape: near-linear scaling while W/p ≫ D, flattening at the
depth floor; c3List's polylog-depth variant keeps scaling further than
the Θ(n)-depth exact-order variant.
"""

from __future__ import annotations

import pytest

from repro.bench import load_dataset
from repro.bench.harness import ALGORITHMS
from repro.bench.reporting import format_table
from repro.pram.cost import Cost
from repro.pram.schedule import greedy_schedule, speedup_curve
from repro.pram.tracker import Tracker

PROCESSORS = [1, 2, 4, 8, 18, 36, 72]


@pytest.mark.parametrize("algo", ["c3list", "c3list-approx", "kclist", "arbcount"])
def test_scaling_curves(benchmark, algo, collector):
    g = load_dataset("chebyshev4")

    def measure():
        tr = Tracker()
        res = ALGORITHMS[algo](g, 8, tr)
        return tr, res

    tr, res = benchmark.pedantic(measure, rounds=1, iterations=1)
    cost = Cost(tr.work, tr.depth)
    curve = speedup_curve(cost, PROCESSORS)

    rows = []
    for p in PROCESSORS:
        tp, speedup = curve[p]
        sched = greedy_schedule(res.task_log.tasks, p)
        rows.append(
            [p, f"{tp:.3g}", f"{speedup:.2f}", f"{sched.makespan:.3g}", f"{sched.utilization:.2f}"]
        )
    collector.add_text(
        f"scaling/chebyshev4 k=8 {algo}",
        format_table(["p", "T_p (Brent)", "speedup", "loop makespan", "util"], rows),
    )

    # Speedup must be monotone and capped by work/depth.
    speedups = [curve[p][1] for p in PROCESSORS]
    assert speedups == sorted(speedups)
    assert speedups[-1] <= cost.work / max(cost.depth, 1) + 1


def test_depth_floor_ordering(collector):
    """The approx-order variant must scale further (lower depth floor)."""
    g = load_dataset("chebyshev4")
    depths = {}
    for algo in ("c3list", "c3list-approx"):
        tr = Tracker()
        ALGORITHMS[algo](g, 8, tr)
        depths[algo] = tr.depth
    assert depths["c3list-approx"] < depths["c3list"]
    collector.add_text(
        "scaling/depth-floor",
        f"exact-order depth = {depths['c3list']:.0f}, "
        f"approx-order depth = {depths['c3list-approx']:.0f}",
    )


def test_work_stealing_vs_brent(collector):
    """Work-stealing simulation: the pessimistic lens on 72 threads."""
    from repro.pram.workstealing import simulate_work_stealing

    g = load_dataset("chebyshev4")
    tr = Tracker()
    res = ALGORITHMS["c3list"](g, 8, tr)
    tasks = res.task_log.tasks
    rows = []
    for p in (8, 36, 72):
        brent = Cost(tr.work, tr.depth).time_on(p)
        greedy = greedy_schedule(tasks, p)
        steal = simulate_work_stealing(tasks, p, steal_cost=1.0, seed=0)
        rows.append(
            [
                p,
                f"{brent:.3g}",
                f"{greedy.makespan:.3g}",
                f"{steal.makespan:.3g}",
                steal.successful_steals,
            ]
        )
        # Work stealing can't beat the greedy loop bound by more than the
        # serial prefix it doesn't model.
        assert steal.makespan >= greedy.makespan - 1e-6
    collector.add_text(
        "scaling/work-stealing chebyshev4 k=8 (search loop only)",
        format_table(
            ["p", "T_p Brent(total)", "greedy loop", "steal loop", "steals"], rows
        ),
    )
