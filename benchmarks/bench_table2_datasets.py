"""Table 2 — dataset overview statistics.

Regenerates the paper's Table 2 (|V|, |E|, |T|, s, |E|/|V|, |T|/|V|,
|T|/|E|) for the seven stand-in datasets and prints it next to the
paper's published numbers so the shape substitution is auditable.
"""

from __future__ import annotations

import pytest

from repro.analysis import graph_summary
from repro.bench import TABLE2_PAPER, dataset_names, load_dataset
from repro.bench.reporting import format_table


@pytest.mark.parametrize("name", dataset_names())
def test_table2_row(benchmark, name, collector):
    g = load_dataset(name)
    summary = benchmark.pedantic(
        graph_summary, args=(g, name), kwargs={"with_sigma": True},
        rounds=1, iterations=1,
    )
    paper = TABLE2_PAPER[name]
    collector.add_text(
        f"table2/{name}",
        format_table(
            ["", "|V|", "|E|", "|T|", "s", "E/V", "T/V", "T/E", "sigma"],
            [
                [
                    "ours",
                    summary.num_vertices,
                    summary.num_edges,
                    summary.num_triangles,
                    summary.degeneracy,
                    f"{summary.edges_per_vertex:.1f}",
                    f"{summary.triangles_per_vertex:.1f}",
                    f"{summary.triangles_per_edge:.1f}",
                    summary.community_degeneracy,
                ],
                [
                    "paper",
                    paper[0],
                    paper[1],
                    paper[2],
                    paper[3],
                    f"{paper[4]:.1f}",
                    f"{paper[5]:.1f}",
                    f"{paper[6]:.1f}",
                    "-",
                ],
            ],
        ),
    )
    # Structural sanity of the stand-in: triangles present, σ < s.
    assert summary.num_triangles > 0
    assert summary.community_degeneracy < summary.degeneracy
