"""Figure 9 — runtimes on Jester2 and Bio-SC-HT, k = 6..10.

The remaining two panels of the paper's sweep: the triangle-dense rating
and gene-association graphs. Expected shape: these are the graphs with
the most triangles per vertex, where the paper's pruning helps least —
the three algorithms stay closer together than in Figure 8.
"""

from __future__ import annotations

import pytest

from repro.bench import load_dataset, run_experiment

GRAPHS = ["jester2", "bio-sc-ht"]
KS = [6, 7, 8, 9, 10]
ALGOS = ["c3list", "kclist", "arbcount"]


@pytest.mark.parametrize("graph_name", GRAPHS)
@pytest.mark.parametrize("k", KS)
@pytest.mark.parametrize("algo", ALGOS)
def test_fig9_cell(benchmark, graph_name, k, algo, collector):
    g = load_dataset(graph_name)
    m = run_experiment(g, k, algo, repeats=1, graph_name=graph_name)
    benchmark.pedantic(
        lambda: run_experiment(g, k, algo, repeats=1, graph_name=graph_name),
        rounds=1,
        iterations=1,
    )
    collector.add("fig9", m)
    assert m.count >= 0
