"""S2 — instance-size scaling: the bounds' m-dependence.

Every work bound in Table 1 is linear in m for fixed k and s (the
k-dependent factor multiplies m). Sweeping each stand-in's scale factor
at fixed k must therefore show near-linear growth of tracked total work
in m — superlinear growth would indicate an implementation that violates
its own bound.
"""

from __future__ import annotations

import pytest

from repro.bench import load_dataset
from repro.bench.harness import ALGORITHMS, peak_rss_kb
from repro.bench.reporting import format_table
from repro.pram.tracker import Tracker

SCALES = [0.5, 1.0, 2.0]


@pytest.mark.parametrize("algo", ["c3list", "kclist"])
def test_work_scales_linearly_in_m(benchmark, algo, collector):
    def run():
        rows = []
        for scale in SCALES:
            g = load_dataset("tech-as-skitter", scale=scale)
            tr = Tracker()
            res = ALGORITHMS[algo](g, 6, tr)
            rows.append(
                (scale, g.num_edges, tr.work, res.count, peak_rss_kb())
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    collector.add_text(
        f"size-scaling/tech-as-skitter k=6 {algo}",
        format_table(
            ["scale", "m", "total work", "count", "work/m", "peak RSS (KiB)"],
            [
                [s, m, f"{w:.4g}", c, f"{w / m:.1f}", rss or "-"]
                for s, m, w, c, rss in rows
            ],
        ),
    )
    # Work per edge must stay within a modest band across a 4x m range
    # (the bound is O(m·f(k, s)); s drifts slightly with scale).
    per_edge = [w / m for _, m, w, _, _ in rows]
    assert max(per_edge) <= 4 * min(per_edge)


def test_sharded_matches_frontier_under_budget(benchmark, collector):
    """The out-of-core engine must trade disk for RAM, not correctness.

    Sweeping scale at a budget far below the full table footprint pins
    the resident-shard window while the graph (and the spill) grows; the
    count stays identical to the in-RAM frontier at every size.
    """
    from repro.core import PreparedGraph, count_cliques, predict_table_bytes
    from repro.obs import MetricsRegistry

    budget = 64 * 1024

    def run():
        rows = []
        for scale in SCALES:
            g = load_dataset("chebyshev4", scale=scale)
            dag = PreparedGraph(g).dag("degeneracy")
            tables = predict_table_bytes(dag.num_edges, dag.max_out_degree)
            registry = MetricsRegistry()
            tr = Tracker()
            tr.attach_metrics(registry)
            sharded = count_cliques(
                g, 5, engine="sharded", memory_budget_bytes=budget, tracker=tr
            )
            resident_peak = registry.to_dict().get(
                "shard.bytes.resident_peak", {}
            )
            in_ram = count_cliques(g, 5, engine="frontier")
            rows.append(
                (
                    scale,
                    g.num_edges,
                    tables,
                    resident_peak.get("value", 0),
                    sharded.count,
                    in_ram.count,
                    peak_rss_kb(),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    collector.add_text(
        f"size-scaling/out-of-core chebyshev4 k=5 budget={budget}B",
        format_table(
            [
                "scale",
                "m",
                "table bytes",
                "resident peak",
                "sharded",
                "frontier",
                "peak RSS (KiB)",
            ],
            [list(r[:-1]) + [r[-1] or "-"] for r in rows],
        ),
    )
    for _, _, _, resident, got, want, _ in rows:
        assert got == want
        assert resident <= budget


def test_scaled_datasets_keep_structure(collector):
    """The scale knob must preserve each stand-in's shape statistics."""
    from repro.analysis import graph_summary

    rows = []
    for scale in SCALES:
        g = load_dataset("chebyshev4", scale=scale)
        s = graph_summary(g, f"chebyshev4@{scale}")
        rows.append(
            [scale, s.num_vertices, s.num_edges, s.degeneracy, f"{s.triangles_per_edge:.2f}"]
        )
    collector.add_text(
        "size-scaling/structure chebyshev4",
        format_table(["scale", "n", "m", "s", "T/E"], rows),
    )
    degeneracies = [r[3] for r in rows]
    # Bandwidth (plus the planted cliques) pins s regardless of n.
    assert max(degeneracies) - min(degeneracies) <= 1
