"""S2 — instance-size scaling: the bounds' m-dependence.

Every work bound in Table 1 is linear in m for fixed k and s (the
k-dependent factor multiplies m). Sweeping each stand-in's scale factor
at fixed k must therefore show near-linear growth of tracked total work
in m — superlinear growth would indicate an implementation that violates
its own bound.
"""

from __future__ import annotations

import pytest

from repro.bench import load_dataset
from repro.bench.harness import ALGORITHMS
from repro.bench.reporting import format_table
from repro.pram.tracker import Tracker

SCALES = [0.5, 1.0, 2.0]


@pytest.mark.parametrize("algo", ["c3list", "kclist"])
def test_work_scales_linearly_in_m(benchmark, algo, collector):
    def run():
        rows = []
        for scale in SCALES:
            g = load_dataset("tech-as-skitter", scale=scale)
            tr = Tracker()
            res = ALGORITHMS[algo](g, 6, tr)
            rows.append(
                (scale, g.num_edges, tr.work, res.count)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    collector.add_text(
        f"size-scaling/tech-as-skitter k=6 {algo}",
        format_table(
            ["scale", "m", "total work", "count", "work/m"],
            [
                [s, m, f"{w:.4g}", c, f"{w / m:.1f}"]
                for s, m, w, c in rows
            ],
        ),
    )
    # Work per edge must stay within a modest band across a 4x m range
    # (the bound is O(m·f(k, s)); s drifts slightly with scale).
    per_edge = [w / m for _, m, w, _ in rows]
    assert max(per_edge) <= 4 * min(per_edge)


def test_scaled_datasets_keep_structure(collector):
    """The scale knob must preserve each stand-in's shape statistics."""
    from repro.analysis import graph_summary

    rows = []
    for scale in SCALES:
        g = load_dataset("chebyshev4", scale=scale)
        s = graph_summary(g, f"chebyshev4@{scale}")
        rows.append(
            [scale, s.num_vertices, s.num_edges, s.degeneracy, f"{s.triangles_per_edge:.2f}"]
        )
    collector.add_text(
        "size-scaling/structure chebyshev4",
        format_table(["scale", "n", "m", "s", "T/E"], rows),
    )
    degeneracies = [r[3] for r in rows]
    # Bandwidth (plus the planted cliques) pins s regardless of n.
    assert max(degeneracies) - min(degeneracies) <= 1
