"""Figure 8 — runtimes on Orkut, Ca-DBLP-2012, Tech-As-Skitter, Gearbox.

The four-panel figure of the paper: each panel sweeps k = 6..10 for
c3List / ArbCount / kClist. Expected shape: for k ≥ 8 ArbCount generally
beats kClist, and c3List wins on the triangle-poor graphs (Skitter,
Gearbox, DBLP) while Orkut is its hardest instance.
"""

from __future__ import annotations

import pytest

from repro.bench import load_dataset, run_experiment

GRAPHS = ["orkut", "ca-dblp-2012", "tech-as-skitter", "gearbox"]
KS = [6, 7, 8, 9, 10]
ALGOS = ["c3list", "kclist", "arbcount"]


@pytest.mark.parametrize("graph_name", GRAPHS)
@pytest.mark.parametrize("k", KS)
@pytest.mark.parametrize("algo", ALGOS)
def test_fig8_cell(benchmark, graph_name, k, algo, collector):
    g = load_dataset(graph_name)
    m = run_experiment(g, k, algo, repeats=1, graph_name=graph_name)
    benchmark.pedantic(
        lambda: run_experiment(g, k, algo, repeats=1, graph_name=graph_name),
        rounds=1,
        iterations=1,
    )
    collector.add("fig8", m)
    assert m.count >= 0
