"""W1 — workload replay: the serving stack under realistic traffic.

The per-query benchmarks measure one engine run; serving cost is set by
what the layers do *between* queries — warm prepared contexts, request
coalescing, admission pricing, mutation invalidation. These cells fire
seeded, Zipf-skewed traces at the in-process service path and report
warm-hit rate, throughput and tail latency per graph regime of the
model zoo, the traffic-shaped counterpart of the paper's Table 2 sweep.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table
from repro.bench.workload import WorkloadSpec, generate_trace, replay_trace
from repro.obs import MetricsRegistry

# One read-mostly trace per zoo regime plus one mutation-heavy mix: the
# regimes where engine rankings (and therefore serving cost) invert.
TRACES = {
    "zoo-read-heavy": WorkloadSpec(
        graphs=("sbm-community", "ws-smallworld", "lattice-mesh"),
        queries=48,
        ks=(3, 4),
        zipf_a=1.2,
        scale=0.5,
        seed=11,
    ),
    "zoo-mutating": WorkloadSpec(
        graphs=("sbm-community", "config-powerlaw"),
        queries=32,
        ks=(3, 4),
        zipf_a=0.8,
        mutation_every=4,
        mutation_batch=2,
        scale=0.5,
        seed=12,
    ),
}


@pytest.mark.parametrize("name", sorted(TRACES))
def test_replay_serving_aggregates(benchmark, name, collector):
    spec = TRACES[name]
    trace = generate_trace(spec)

    def run():
        return replay_trace(
            trace,
            spec.graphs,
            name=name,
            seed=spec.seed,
            scale=spec.scale,
            metrics=MetricsRegistry(),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    collector.add_text(
        f"workload-replay/{name}",
        format_table(
            ["queries", "mutations", "errors", "warm rate", "coalesced",
             "qps", "p50 ms", "p95 ms", "p99 ms", "checksum"],
            [[
                result.queries,
                result.mutations,
                result.errors,
                f"{result.warm_hit_rate:.3f}",
                result.coalesced,
                f"{result.throughput_qps:.1f}",
                f"{result.p50_ms:.2f}",
                f"{result.p95_ms:.2f}",
                f"{result.p99_ms:.2f}",
                result.count_checksum,
            ]],
        ),
    )
    assert result.errors == 0
    assert result.queries == sum(e["type"] == "query" for e in trace)
    # Registration pre-builds the order pieces, so a sequential replay
    # against a fresh daemon serves every admitted query warm.
    assert result.warm_hit_rate == 1.0


def test_replay_concurrency_preserves_checksum(benchmark, collector):
    """Windowed concurrent replay may reorder work but never results."""
    spec = TRACES["zoo-read-heavy"]
    trace = generate_trace(spec)

    def run():
        rows = []
        for conc in (1, 4):
            res = replay_trace(
                trace,
                spec.graphs,
                name=f"conc{conc}",
                seed=spec.seed,
                scale=spec.scale,
                concurrency=conc,
                metrics=MetricsRegistry(),
            )
            rows.append((conc, res.count_checksum, res.coalesced,
                         res.throughput_qps))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    collector.add_text(
        "workload-replay/concurrency",
        format_table(
            ["concurrency", "checksum", "coalesced", "qps"],
            [[c, ck, co, f"{q:.1f}"] for c, ck, co, q in rows],
        ),
    )
    checksums = {ck for _, ck, _, _ in rows}
    assert len(checksums) == 1
