"""Shared benchmark fixtures.

Each benchmark file regenerates one artifact of the paper's evaluation
(Table 1/2, Figures 7/8/9, plus the ablations DESIGN.md calls out). Cells
are measured with pytest-benchmark (`--benchmark-only` runs just these)
and the reproduced tables are printed at the end of the session and
written to ``benchmark_results/``.
"""

from __future__ import annotations

import os
from collections import defaultdict
from typing import Dict, List

import pytest

from repro.bench.harness import Measurement
from repro.bench.reporting import figure_series, to_csv

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "benchmark_results")


class FigureCollector:
    """Aggregates measurements per figure and renders them on teardown."""

    def __init__(self) -> None:
        self.by_figure: Dict[str, List[Measurement]] = defaultdict(list)
        self.raw_text: Dict[str, str] = {}

    def add(self, figure: str, measurement: Measurement) -> None:
        self.by_figure[figure].append(measurement)

    def add_text(self, name: str, text: str) -> None:
        self.raw_text[name] = text

    def render(self) -> str:
        chunks = []
        for fig in sorted(self.by_figure):
            by_graph: Dict[str, List[Measurement]] = defaultdict(list)
            for m in self.by_figure[fig]:
                by_graph[m.graph].append(m)
            for graph, ms in sorted(by_graph.items()):
                for metric in ("wall_mean", "t72", "work", "search_work"):
                    chunks.append(
                        figure_series(ms, metric=metric, title=f"{fig} / {graph}")
                    )
                    chunks.append("")
        for name, text in sorted(self.raw_text.items()):
            chunks.append(f"== {name} ==")
            chunks.append(text)
            chunks.append("")
        return "\n".join(chunks)

    def dump(self) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        rendered = self.render()
        if rendered.strip():
            with open(os.path.join(RESULTS_DIR, "report.txt"), "w") as fh:
                fh.write(rendered)
            all_measurements = [
                m for ms in self.by_figure.values() for m in ms
            ]
            if all_measurements:
                with open(os.path.join(RESULTS_DIR, "measurements.csv"), "w") as fh:
                    fh.write(to_csv(all_measurements))


_collector = FigureCollector()


@pytest.fixture(scope="session")
def collector():
    return _collector


def pytest_sessionfinish(session, exitstatus):
    _collector.dump()
    rendered = _collector.render()
    if rendered.strip():
        print("\n" + rendered)
