"""A3 — ablation: edge-growing vs triangle-growing recursion (§5).

The paper's conclusion proposes extending cliques "by larger motifs such
as triangles". We implemented it (`repro.core.motifs`); this bench
quantifies the tradeoff against the edge-growing recursion on the same
preprocessing: triangle-growing needs fewer, wider recursion levels
(fewer calls, lower depth) at the cost of an extra inner loop per level.
"""

from __future__ import annotations

import pytest

from repro.bench import load_dataset
from repro.bench.reporting import format_table
from repro.core import count_cliques_triangle_growing, run_variant
from repro.pram.tracker import Tracker

GRAPH = "bio-sc-ht"
KS = [6, 8, 10]


@pytest.mark.parametrize("k", KS)
def test_motif_ablation(benchmark, k, collector):
    g = load_dataset(GRAPH)

    def run():
        tr_e = Tracker()
        edge = run_variant(g, k, "best-work", tr_e)
        tri = count_cliques_triangle_growing(g, k)
        return edge, tri

    edge, tri = benchmark.pedantic(run, rounds=1, iterations=1)
    assert edge.count == tri.count, "both growth strategies must agree"
    collector.add_text(
        f"ablation-motifs/{GRAPH} k={k}",
        format_table(
            ["growth", "count", "recursive calls", "search work", "depth"],
            [
                [
                    "edge (Alg. 2)",
                    edge.count,
                    edge.stats.calls,
                    f"{edge.phases['search'].work:.4g}",
                    f"{edge.cost.depth:.4g}",
                ],
                [
                    "triangle (§5)",
                    tri.count,
                    tri.stats.calls,
                    f"{tri.phases.get('search', tri.cost).work:.4g}",
                    f"{tri.cost.depth:.4g}",
                ],
            ],
        ),
    )
    # Triangle growth consumes 3 vertices per level, so for large k the
    # recursion tree shrinks (for small k its extra inner loop spawns more
    # but cheaper leaf calls — visible in the table).
    if k >= 10:
        assert tri.stats.calls <= edge.stats.calls


def test_kernelization_effect(collector):
    """A4 — kernelization ablation: (k−1)-core + triangle filters."""
    from repro.graphs import kcore_kernel, triangle_kernel
    from repro import count_cliques

    g = load_dataset("tech-as-skitter")
    rows = []
    for k in (8, 10):
        full = count_cliques(g, k).count
        kc = kcore_kernel(g, k)
        tk = triangle_kernel(g, k)
        assert count_cliques(kc.graph, k).count == full
        assert count_cliques(tk.graph, k).count == full
        rows.append(
            [
                k,
                f"{g.num_vertices}/{g.num_edges}",
                f"{kc.graph.num_vertices}/{kc.graph.num_edges}",
                f"{tk.graph.num_vertices}/{tk.graph.num_edges}",
            ]
        )
    collector.add_text(
        "ablation-kernels/tech-as-skitter",
        format_table(["k", "full n/m", "(k-1)-core n/m", "triangle kernel n/m"], rows),
    )
