#!/usr/bin/env python
"""Quickstart: count and list k-cliques, inspect the cost model.

Run:  python examples/quickstart.py
"""

from repro import count_cliques, list_cliques
from repro.graphs import gnm_random_graph, plant_cliques
from repro.pram.tracker import Tracker


def main() -> None:
    # A sparse random graph with three planted cliques of sizes 9, 8, 7.
    base = gnm_random_graph(2000, 8000, seed=7)
    graph, planted = plant_cliques(base, [9, 8, 7], seed=8)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")
    print(f"planted cliques: {[len(p) for p in planted]}")

    # Count 6-cliques with the default (best-work) variant; the tracker
    # records the CREW-PRAM work/depth of the whole computation.
    tracker = Tracker()
    result = count_cliques(graph, k=6, tracker=tracker)
    print(f"\n6-cliques: {result.count}")
    print(f"work = {tracker.work:.3g} ops, depth = {tracker.depth:.3g} ops")
    print(f"simulated runtime on 72 PRAM processors: {result.simulated_time(72):.3g} steps")
    print("phase breakdown:")
    for phase, cost in tracker.phases.items():
        print(f"  {phase:<12} work={cost.work:>12.3g}  depth={cost.depth:>8.3g}")

    # List the 8-cliques (each exactly once, as sorted vertex tuples).
    cliques = list_cliques(graph, k=8)
    print(f"\n8-cliques found: {len(cliques)}")
    for c in cliques[:5]:
        print(f"  {c}")

    # The planted 9-clique must appear among the 9-cliques.
    nine = list_cliques(graph, k=9)
    planted9 = tuple(sorted(planted[0].tolist()))
    print(f"\nplanted 9-clique recovered: {planted9 in nine}")


if __name__ == "__main__":
    main()
