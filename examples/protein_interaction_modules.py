#!/usr/bin/env python
"""Bioinformatics scenario: dense modules in a gene-association network.

The paper motivates clique listing with bioinformatics applications
(its Bio-SC-HT dataset is a functional gene-association network). Dense
gene modules appear as large cliques. This example builds a Bio-SC-HT-like
module-structured graph, finds its protein complexes as maximal cliques,
and cross-validates the k-clique spectrum across four engines.

Run:  python examples/protein_interaction_modules.py
"""

from collections import Counter

from repro import count_cliques
from repro.analysis import graph_summary
from repro.baselines import chiba_nishizeki_count, maximal_cliques
from repro.bench.reporting import format_table
from repro.graphs import plant_cliques, relaxed_caveman_graph
from repro.pram.tracker import Tracker


def main() -> None:
    # Overlapping dense modules plus a planted "complex" of 11 genes.
    base = relaxed_caveman_graph(24, 9, 0.18, seed=17)
    graph, planted = plant_cliques(base, [11], seed=18)
    complex11 = tuple(sorted(planted[0].tolist()))

    summary = graph_summary(graph, "gene-assoc", with_sigma=True, with_omega=True)
    print(summary.header())
    print(summary.row())

    # Module discovery: maximal cliques = candidate protein complexes.
    modules = maximal_cliques(graph)
    sizes = Counter(len(m) for m in modules)
    print(f"\nmaximal cliques (candidate complexes): {len(modules)}")
    print(
        format_table(
            ["module size", "count"],
            [[s, c] for s, c in sorted(sizes.items(), reverse=True)[:8]],
        )
    )

    # The planted complex must be recovered as a maximal clique.
    recovered = any(set(complex11) <= set(m) for m in modules)
    print(f"planted 11-gene complex recovered: {recovered}")

    # Clique spectrum, cross-validated against Chiba–Nishizeki.
    print("\nk-clique spectrum (c3List vs Chiba-Nishizeki):")
    rows = []
    for k in (5, 7, 9, 11):
        tr = Tracker()
        cn_tr = Tracker()
        ours = count_cliques(graph, k, tracker=tr)
        cn = chiba_nishizeki_count(graph, k, tracker=cn_tr)
        assert ours.count == cn.count
        rows.append([k, ours.count, f"{tr.work:.3g}", f"{cn_tr.work:.3g}"])
    print(format_table(["k", "#cliques", "c3List work", "ChibaNishizeki work"], rows))


if __name__ == "__main__":
    main()
