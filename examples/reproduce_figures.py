#!/usr/bin/env python
"""Regenerate the paper's Figures 7-9 without pytest.

Runs the full k = 6..10 sweep of c3List / kClist / ArbCount over all
seven Table-2 stand-ins, prints each panel as a table + sparkline, and
writes the raw cells to ``figure_data.csv``. A lighter-weight alternative
to ``pytest benchmarks/ --benchmark-only`` when you just want the curves.

Run:  python examples/reproduce_figures.py [--full]
"""

import argparse
import sys

from repro.bench import (
    dataset_names,
    figure_series,
    figure_sparklines,
    load_dataset,
    sweep,
    to_csv,
)

FIGURE_OF = {
    "chebyshev4": "Figure 7",
    "orkut": "Figure 8",
    "ca-dblp-2012": "Figure 8",
    "tech-as-skitter": "Figure 8",
    "gearbox": "Figure 8",
    "jester2": "Figure 9",
    "bio-sc-ht": "Figure 9",
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--full", action="store_true", help="all k in 6..10 with 2 repeats"
    )
    args = parser.parse_args(argv)

    ks = [6, 7, 8, 9, 10] if args.full else [6, 8, 10]
    repeats = 2 if args.full else 1
    algos = ["c3list", "kclist", "arbcount"]

    all_measurements = []
    for name in dataset_names():
        graph = load_dataset(name)
        ms = sweep(graph, ks, algos, repeats=repeats, graph_name=name)
        all_measurements.extend(ms)
        print(f"\n######## {FIGURE_OF[name]} — {name} "
              f"(n={graph.num_vertices}, m={graph.num_edges}) ########")
        for metric in ("wall_mean", "t72", "search_work"):
            print()
            print(figure_series(ms, metric=metric, title=name))
        print()
        print(figure_sparklines(ms, metric="t72"))

    with open("figure_data.csv", "w") as fh:
        fh.write(to_csv(all_measurements))
    print("\nwrote figure_data.csv "
          f"({len(all_measurements)} cells)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
