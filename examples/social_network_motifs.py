#!/usr/bin/env python
"""Social-network cohesive-group analysis (the paper's intro motivation).

Cliques model tightly-knit groups in social networks. This example builds
an Orkut-like social graph, profiles its clique spectrum with the
community-centric algorithm, compares all three contenders' costs, and
extracts the largest cohesive groups.

Run:  python examples/social_network_motifs.py
"""

from repro import count_cliques, list_cliques
from repro.analysis import graph_summary
from repro.baselines import clique_number, kclist_count, arbcount_count
from repro.bench.reporting import format_table
from repro.graphs import powerlaw_cluster_graph
from repro.pram.tracker import Tracker


def main() -> None:
    # Heavy-tailed degrees + triadic closure: the social-network regime.
    graph = powerlaw_cluster_graph(1500, 8, 0.55, seed=42)
    summary = graph_summary(graph, "social", with_sigma=True)
    print(summary.header())
    print(summary.row())

    omega = clique_number(graph)
    print(f"\nclique number (largest cohesive group): {omega}")

    # Clique spectrum: how many groups of each size?
    print("\nclique spectrum (community-centric c3List vs baselines):")
    rows = []
    for k in range(4, min(omega, 9) + 1):
        tr = Tracker()
        ours = count_cliques(graph, k, tracker=tr)
        kcl = kclist_count(graph, k, tracker=Tracker())
        arb = arbcount_count(graph, k, tracker=Tracker())
        assert ours.count == kcl.count == arb.count
        rows.append(
            [
                k,
                ours.count,
                f"{tr.work:.3g}",
                f"{kcl.cost.work:.3g}",
                f"{arb.cost.work:.3g}",
            ]
        )
    print(
        format_table(
            ["k", "#cliques", "c3List work", "kClist work", "ArbCount work"], rows
        )
    )

    # The most cohesive groups: maximum cliques and their members.
    top = list_cliques(graph, omega)
    print(f"\nmaximum cohesive groups (size {omega}): {len(top)}")
    for group in top[:5]:
        print(f"  members: {group}")


if __name__ == "__main__":
    main()
