#!/usr/bin/env python
"""Near-clique mining: k-clique densest subgraph on a noisy network.

The related work the paper builds on (Tsourakakis'15, Mitzenmacher+'15)
uses k-clique counts to find *near-cliques* — subgraphs that are almost
complete but would be missed by exact clique search. This example plants
a near-clique (a 12-clique with 20% of its edges deleted) in a sparse
background, shows that exact clique listing misses it, and recovers it
with the k-clique densest-subgraph peel built on this library's counting
engine.

Run:  python examples/densest_subgraph_mining.py
"""

import itertools

import numpy as np

from repro import count_cliques
from repro.analysis import hardness_profile
from repro.bench.reporting import format_table
from repro.core import kclique_densest_subgraph, max_clique_size
from repro.graphs import from_edges, gnm_random_graph


def main() -> None:
    rng = np.random.default_rng(23)

    # Background: sparse random graph.
    background = gnm_random_graph(400, 800, seed=11)
    us, vs = background.edge_array()
    edges = list(zip(us.tolist(), vs.tolist()))

    # Near-clique: 12 chosen vertices, each pair kept with prob 0.8.
    members = sorted(rng.choice(400, size=12, replace=False).tolist())
    kept = 0
    for a, b in itertools.combinations(members, 2):
        if rng.random() < 0.8:
            edges.append((a, b))
            kept += 1
    graph = from_edges(np.asarray(edges, dtype=np.int64), num_vertices=400)
    print(f"planted near-clique: 12 vertices, {kept}/66 pairs present")

    profile = hardness_profile(graph, k=4)
    print(
        format_table(
            ["metric", "value"],
            [[k, f"{v:.4g}"] for k, v in profile.items()],
        )
    )

    omega = max_clique_size(graph)
    print(f"\nexact clique number: {omega} (the 12-vertex group is NOT a clique)")

    res = kclique_densest_subgraph(graph, k=4)
    found = set(res.vertices)
    overlap = len(found & set(members))
    print(f"\n4-clique densest subgraph: {len(res.vertices)} vertices, "
          f"density {res.density:.2f} 4-cliques/vertex")
    print(f"overlap with the planted near-clique: {overlap}/12 members")
    precision = overlap / max(len(found), 1)
    print(f"precision: {precision:.2f}")

    print("\npeel trace (subgraph size -> density), last 8 points:")
    tail = sorted(res.densities.items())[:8]
    print(format_table(["|S|", "rho_4(S)"], [[s, f"{d:.3f}"] for s, d in tail]))


if __name__ == "__main__":
    main()
