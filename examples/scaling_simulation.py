#!/usr/bin/env python
"""Parallel-scaling study: Brent simulation + real process-based fan-out.

The paper evaluates on 72 threads of a dual-Xeon node. Under CPython the
GIL forbids shared-memory thread speedups, so this library (a) tracks
exact CREW-PRAM work/depth and simulates T_p = W/p + D, and (b) offers a
fork-based process executor for the embarrassingly-parallel outer edge
loop. This example demonstrates both.

Run:  python examples/scaling_simulation.py
"""

import numpy as np

from repro.bench import load_dataset
from repro.bench.reporting import format_table
from repro.core import run_variant
from repro.graphs import orient_by_order
from repro.orders import degeneracy_order
from repro.pram.cost import Cost
from repro.pram.executor import available_workers, parallel_map_reduce
from repro.pram.schedule import greedy_schedule, speedup_curve
from repro.pram.tracker import Tracker
from repro.triangles import build_communities


def simulated_scaling() -> None:
    print("=== simulated strong scaling (chebyshev4 stand-in, k=8) ===")
    g = load_dataset("chebyshev4")
    rows = []
    for variant in ("best-work", "best-depth"):
        tr = Tracker()
        res = run_variant(g, 8, variant, tr)
        cost = Cost(tr.work, tr.depth)
        curve = speedup_curve(cost, [1, 8, 18, 36, 72])
        sched72 = greedy_schedule(res.task_log.tasks, 72)
        rows.append(
            [
                variant,
                f"{cost.work:.3g}",
                f"{cost.depth:.3g}",
                f"{curve[72][1]:.1f}x",
                f"{sched72.utilization:.2f}",
            ]
        )
    print(
        format_table(
            ["variant", "work", "depth", "speedup @72 (Brent)", "loop util @72"],
            rows,
        )
    )
    print(
        "\nThe approximate-order variant trades a constant-factor work"
        "\nincrease for a polylog depth, so its speedup keeps growing"
        "\nwhere the exact-order variant hits its Theta(n) depth floor."
    )


# Worker must be module-level for multiprocessing pickling.
_DAG = None
_COMMS = None


def _count_chunk(edge_ids, k):
    """Count cliques supported by one chunk of the eligible edges."""
    from repro.core.recursive import SearchStats, recursive_count

    total = 0
    for eid in edge_ids.tolist():
        community = _COMMS.of(int(eid))
        if community.size < k - 2:
            continue
        got, _ = recursive_count(
            _DAG, _COMMS, community, k - 2, k, SearchStats()
        )
        total += got
    return total


def process_fanout() -> None:
    global _DAG, _COMMS
    print("\n=== real process-based fan-out of the outer edge loop ===")
    g = load_dataset("ca-dblp-2012")
    order = degeneracy_order(g).order
    _DAG = orient_by_order(g, order)
    _COMMS = build_communities(_DAG)

    k = 6
    workers = available_workers()
    counts = {}
    import time

    for w in sorted({1, workers}):
        t0 = time.perf_counter()
        counts[w] = parallel_map_reduce(
            _count_chunk, _DAG.num_edges, args=(k,), n_workers=w
        )
        print(f"  {w} worker(s): {counts[w]} {k}-cliques in {time.perf_counter() - t0:.2f}s")
    assert len(set(counts.values())) == 1, "worker count must not change the result"
    if workers == 1:
        print("  (only one CPU core available here — fan-out degrades gracefully)")


if __name__ == "__main__":
    simulated_scaling()
    process_fanout()
