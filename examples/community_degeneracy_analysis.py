#!/usr/bin/env python
"""When does the community-degeneracy parameterization pay off? (§4.3)

The paper's second contribution parameterizes clique listing by the
community degeneracy σ, which is always < s and can be *arbitrarily*
smaller. This example reproduces the two extreme families from §1.1 —
the hypercube (σ = 0, s = d) and the complete-bipartite-plus-path graph
(σ = 1, s = Θ(n)) — then shows on a module-structured graph how the
σ-parameterized variant shrinks the candidate sets the search recurses on.

Run:  python examples/community_degeneracy_analysis.py
"""

import numpy as np

from repro import count_cliques
from repro.bench.reporting import format_table
from repro.graphs import (
    bipartite_plus_line_graph,
    hypercube_graph,
    relaxed_caveman_graph,
)
from repro.orders import (
    approx_community_order,
    candidate_sets_from_rank,
    community_degeneracy,
    community_degeneracy_order,
    degeneracy_order,
)
from repro.pram.tracker import Tracker


def main() -> None:
    print("=== sigma vs s on the paper's extreme families (Section 1.1) ===")
    rows = []
    for name, g in [
        ("hypercube d=6", hypercube_graph(6)),
        ("hypercube d=8", hypercube_graph(8)),
        ("K_{n/2,n/2}+path n=40", bipartite_plus_line_graph(20)),
        ("K_{n/2,n/2}+path n=80", bipartite_plus_line_graph(40)),
    ]:
        s = degeneracy_order(g).degeneracy
        sigma = community_degeneracy(g)
        rows.append([name, g.num_vertices, s, sigma])
    print(format_table(["graph", "n", "degeneracy s", "community degeneracy sigma"], rows))

    print("\n=== candidate-set sizes on a module-structured graph ===")
    g = relaxed_caveman_graph(20, 10, 0.15, seed=3)
    s = degeneracy_order(g).degeneracy
    exact = community_degeneracy_order(g)
    approx = approx_community_order(g, eps=0.5)
    rows = []
    for name, order in [("exact greedy", exact), ("Algorithm 4 (eps=0.5)", approx)]:
        indptr, _ = candidate_sets_from_rank(g, order.edge_rank)
        sizes = np.diff(indptr)
        rows.append(
            [
                name,
                order.sigma,
                int(sizes.max(initial=0)),
                f"{sizes[sizes > 0].mean():.2f}" if (sizes > 0).any() else "0",
                order.num_rounds,
            ]
        )
    print(f"degeneracy s = {s}, community degeneracy sigma = {exact.sigma}")
    print(
        format_table(
            ["edge order", "certified bound", "max |V'|", "mean |V'| (nonzero)", "rounds"],
            rows,
        )
    )

    print("\n=== end-to-end: degeneracy- vs sigma-parameterized search ===")
    rows = []
    for variant in ("best-work", "cd-best-work", "cd-best-depth"):
        tr = Tracker()
        # Pin the reference engine: this comparison reads the search
        # phase of the work/depth algebra, which the batch engines skip.
        res = count_cliques(g, 7, variant=variant, tracker=tr, engine="reference")
        rows.append(
            [variant, res.count, res.gamma, f"{tr.phases['search'].work:.3g}"]
        )
    print(format_table(["variant", "7-cliques", "max candidate set", "search work"], rows))


if __name__ == "__main__":
    main()
